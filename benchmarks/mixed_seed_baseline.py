"""The pre-batch Section 4 pipeline, vendored verbatim from the code it
replaced.

Every function below is an unmodified copy of the sequential
implementation this repository shipped before the batched mixed-strategy
engine existed (``equilibria/fully_mixed.py``, the mixed half of
``model/latency.py``, ``equilibria/conditions.is_mixed_nash`` and
``analysis/poa.py`` as of commit 6917c4f), with only the intra-module
imports rewired to this file. ``benchmarks/bench_mixed.py`` times it as
the historical per-instance baseline, and ``python
benchmarks/mixed_seed_baseline.py`` regenerates
``tests/data/mixed_seed_baseline.json`` — the frozen fingerprint the
regression tests pin the batched E7-E11 runners against, bit for bit.

Modules the batched-mixed PR did *not* refactor (the pure-NE
enumerator, the social optimum, the random-game generators) are imported
from the library: they are byte-identical to what the seed pipeline
called, so importing them keeps the baseline honest without duplicating
unchanged code. Support enumeration *was* later refactored onto the
stacked ``(B, k, k)`` solver, so the fingerprints now call the vendored
pre-batch copy in ``benchmarks/support_seed_baseline.py`` instead.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from support_seed_baseline import seed_enumerate_mixed_nash

from repro.equilibria.enumeration import pure_nash_profiles
from repro.generators.games import random_game, random_uniform_beliefs_game
from repro.generators.suites import GridCell
from repro.model.game import UncertainRoutingGame
from repro.model.profiles import PureProfile
from repro.model.social import opt1, opt2
from repro.util.rng import stable_seed


# --- seed equilibria/fully_mixed.py -------------------------------- #


def seed_fully_mixed_candidate(
    game: UncertainRoutingGame, *, boundary_tol: float = 1e-12
):
    """Evaluate the closed form of Lemmas 4.1-4.3 in O(nm).

    Returns ``(probabilities, latencies, link_traffic, exists)`` — the
    fields of the library's ``FullyMixedResult`` as plain values.
    """
    n, m = game.num_users, game.num_links
    w = game.weights
    caps = game.capacities
    t = game.initial_traffic
    w_tot = game.total_traffic
    t_tot = float(t.sum())

    row_sums = caps.sum(axis=1)  # S_i
    lam = ((m - 1) * w + w_tot + t_tot) / row_sums  # Lemma 4.1
    link_traffic = (caps.T @ lam - w_tot - n * t) / (n - 1)  # Lemma 4.2
    probs = (t[None, :] + link_traffic[None, :] + w[:, None] - caps * lam[:, None]) / w[
        :, None
    ]  # Lemma 4.3

    interior = bool(
        np.all(probs > boundary_tol) and np.all(probs < 1.0 - boundary_tol)
    )
    return probs, lam, link_traffic, interior


def seed_profile_matrix(probs: np.ndarray) -> np.ndarray:
    """The row renormalisation ``MixedProfile`` validation applies.

    ``FullyMixedResult.profile()`` routes the candidate through
    ``check_probability_matrix``, which clips negatives and divides each
    row by its sum; every downstream seed computation saw the
    renormalised matrix, so the baseline must reproduce it exactly.
    """
    arr = np.clip(probs, 0.0, None)
    return arr / arr.sum(axis=1, keepdims=True)


# --- seed model/latency.py (mixed half) ----------------------------- #


def seed_mixed_latency_matrix(
    game: UncertainRoutingGame, p: np.ndarray
) -> np.ndarray:
    """The ``(n, m)`` matrix ``lambda^l_{i, b_i}(P)`` of Section 2."""
    w_link = p.T @ game.weights + game.initial_traffic  # (m,)
    numer = (1.0 - p) * game.weights[:, None] + w_link[None, :]
    return numer / game.capacities


def seed_min_expected_latencies(
    game: UncertainRoutingGame, p: np.ndarray
) -> np.ndarray:
    """``lambda_{i, b_i}(P) = min_l lambda^l_{i, b_i}(P)`` per user."""
    return seed_mixed_latency_matrix(game, p).min(axis=1)


# --- seed equilibria/conditions.py ---------------------------------- #


def seed_is_mixed_nash(
    game: UncertainRoutingGame, p: np.ndarray, *, tol: float = 1e-9
) -> bool:
    """True when the support-optimality condition holds for every user."""
    lat = seed_mixed_latency_matrix(game, p)
    minima = lat.min(axis=1)
    scale = np.maximum(minima, 1.0)
    bad = (p > 1e-12) & (lat > (minima + tol * scale)[:, None])
    return not bool(bad.any())


# --- seed analysis/poa.py ------------------------------------------- #


def seed_poa_bound_uniform(game: UncertainRoutingGame) -> float:
    """Theorem 4.13's upper bound (valid under uniform user beliefs)."""
    caps = game.capacities
    n, m = game.num_users, game.num_links
    return float(caps.max() / caps.min()) * (m + n - 1) / m


def seed_poa_bound_general(game: UncertainRoutingGame) -> float:
    """Theorem 4.14's upper bound (valid for every game)."""
    caps = game.capacities
    n, m = game.num_users, game.num_links
    cmax = float(caps.max())
    cmin = float(caps.min())
    col_min_sum = float(caps.min(axis=0).sum())
    return (cmax**2 / cmin) * (m + n - 1) / col_min_sum


def _one_hot(sigma: np.ndarray, num_users: int, num_links: int) -> np.ndarray:
    """``pure_to_mixed`` without the object wrappers: exact one-hot rows
    (row sums are exactly 1.0, so the validation divide is a no-op)."""
    mat = np.zeros((num_users, num_links))
    mat[np.arange(num_users), sigma] = 1.0
    return mat


def seed_empirical_ratios(
    game: UncertainRoutingGame, eq_matrices: Sequence[np.ndarray]
) -> tuple[float, float]:
    """Worst ``(SC1/OPT1, SC2/OPT2)`` over the supplied equilibria."""
    if not eq_matrices:
        raise ValueError("no equilibria supplied or found")
    o1, o2 = opt1(game), opt2(game)
    worst1 = worst2 = 0.0
    for p in eq_matrices:
        costs = seed_min_expected_latencies(game, p)
        worst1 = max(worst1, float(costs.sum()) / o1)
        worst2 = max(worst2, float(costs.max()) / o2)
    return worst1, worst2


def _equilibrium_matrices(game: UncertainRoutingGame) -> list[np.ndarray]:
    """All pure NE (as degenerate matrices) plus the FMNE when it exists
    — exactly the equilibrium set ``poa_study`` evaluated per instance."""
    n, m = game.num_users, game.num_links
    mats = [
        _one_hot(eq.links, n, m) for eq in pure_nash_profiles(game)
    ]
    probs, _, _, exists = seed_fully_mixed_candidate(game)
    if exists:
        mats.append(seed_profile_matrix(probs))
    return mats


def seed_poa_study(
    grid: Sequence[GridCell],
    *,
    uniform_beliefs: bool,
    label: str = "poa",
) -> list[dict]:
    """Sweep random games and record empirical ratio vs theorem bound."""
    observations: list[dict] = []
    for cell in grid:
        for rep in range(cell.replications):
            seed = stable_seed(label, cell.num_users, cell.num_links, rep)
            if uniform_beliefs:
                game = random_uniform_beliefs_game(
                    cell.num_users, cell.num_links, seed=seed
                )
                bound = seed_poa_bound_uniform(game)
            else:
                game = random_game(cell.num_users, cell.num_links, seed=seed)
                bound = seed_poa_bound_general(game)
            mats = _equilibrium_matrices(game)
            if not mats:  # pragma: no cover - would refute Conjecture 3.7
                continue
            r1, r2 = seed_empirical_ratios(game, mats)
            observations.append(
                {
                    "n": cell.num_users, "m": cell.num_links,
                    "ratio_sc1": r1, "ratio_sc2": r2,
                    "bound": bound, "num_equilibria": len(mats),
                }
            )
    return observations


# --- seed experiments/mixed.py loops -------------------------------- #


def seed_fmne_closed_form_sweep(
    grid: Sequence[GridCell], *, label: str = "E7"
) -> list[tuple[int, int]]:
    """The per-instance closed-form part of E7: candidate + Nash check.

    Per cell: ``(FMNE exists, closed form is NE)`` counts. The support
    enumeration cross-check is deliberately excluded — it is shared
    unchanged by the batched runner, so including it on both sides of a
    timing comparison would only dilute the measured engine speedup.
    """
    out = []
    for cell in grid:
        exists = nash_ok = 0
        for rep in range(cell.replications):
            game = random_game(
                cell.num_users, cell.num_links,
                seed=stable_seed(label, cell.num_users, cell.num_links, rep),
            )
            probs, _, _, interior = seed_fully_mixed_candidate(game)
            if not interior:
                continue
            exists += 1
            if seed_is_mixed_nash(game, seed_profile_matrix(probs), tol=1e-7):
                nash_ok += 1
        out.append((exists, nash_ok))
    return out


def seed_e7_cells(grid: Sequence[GridCell]) -> list[dict]:
    """The full E7 fingerprint (closed form + uniqueness cross-check)."""
    cells = []
    for cell in grid:
        exists = nash_ok = unique_ok = 0
        for rep in range(cell.replications):
            game = random_game(
                cell.num_users, cell.num_links,
                seed=stable_seed("E7", cell.num_users, cell.num_links, rep),
            )
            probs, _, _, interior = seed_fully_mixed_candidate(game)
            if not interior:
                continue
            exists += 1
            matrix = seed_profile_matrix(probs)
            if seed_is_mixed_nash(game, matrix, tol=1e-7):
                nash_ok += 1
            fully_mixed = [
                eq for eq in seed_enumerate_mixed_nash(game) if eq.is_fully_mixed(atol=1e-9)
            ]
            if len(fully_mixed) == 1 and np.allclose(
                fully_mixed[0].matrix, matrix, atol=1e-6
            ):
                unique_ok += 1
        cells.append(
            {
                "n": cell.num_users, "m": cell.num_links,
                "reps": cell.replications, "exists": exists,
                "nash_ok": nash_ok, "unique_ok": unique_ok,
            }
        )
    return cells


def seed_e8_cells(cells: Sequence[tuple[int, int]], reps: int) -> list[dict]:
    """The E8 fingerprint: per-cell worst deviation from ``p = 1/m``."""
    rows = []
    for n, m in cells:
        cell_worst = 0.0
        for rep in range(reps):
            game = random_uniform_beliefs_game(n, m, seed=stable_seed("E8", n, m, rep))
            probs, _, _, _ = seed_fully_mixed_candidate(game)
            cell_worst = max(cell_worst, float(np.abs(probs - 1.0 / m).max()))
        rows.append({"n": n, "m": m, "reps": reps, "max_dev": cell_worst})
    return rows


def seed_e9_cells(grid: Sequence[GridCell]) -> list[dict]:
    """The E9 fingerprint: equilibria checked / dominance violations."""
    cells = []
    for cell in grid:
        eqs = violations = 0
        for rep in range(cell.replications):
            game = random_game(
                cell.num_users, cell.num_links,
                seed=stable_seed("E9", cell.num_users, cell.num_links, rep),
            )
            _, reference, _, _ = seed_fully_mixed_candidate(game)
            equilibria = seed_enumerate_mixed_nash(game)
            eqs += len(equilibria)
            sc1_values, sc2_values = [], []
            for eq in equilibria:
                lat = seed_min_expected_latencies(game, eq.matrix)
                excess = lat - reference
                scale = np.maximum(np.abs(reference), 1.0)
                violations += int(np.count_nonzero(excess > 1e-7 * scale))
                sc1_values.append(float(lat.sum()))
                sc2_values.append(float(lat.max()))
            if equilibria:
                if max(sc1_values) > float(reference.sum()) * (1 + 1e-7):
                    violations += 1
                if max(sc2_values) > float(reference.max()) * (1 + 1e-7):
                    violations += 1
        cells.append(
            {
                "n": cell.num_users, "m": cell.num_links,
                "reps": cell.replications, "equilibria": eqs,
                "violations": violations,
            }
        )
    return cells


# --- baseline regeneration ------------------------------------------ #


def generate_baseline() -> dict:
    """Recompute the full quick+full E7-E11 fingerprint from seed code."""
    from repro.generators.suites import poa_grid, small_verification_grid

    def one(quick: bool) -> dict:
        e7_grid = list(small_verification_grid(replications=4 if quick else 12))
        e9_grid = list(small_verification_grid(replications=3 if quick else 8))
        if quick:
            pgrid = [GridCell(n, m, 6) for (n, m) in [(3, 2), (4, 3), (5, 2)]]
        else:
            pgrid = list(poa_grid())
        return {
            "E7": seed_e7_cells(e7_grid),
            "E8": seed_e8_cells(
                [(2, 2), (3, 3), (5, 4), (8, 6)], 20 if quick else 100
            ),
            "E9": seed_e9_cells(e9_grid),
            "E10": seed_poa_study(pgrid, uniform_beliefs=True, label="E10"),
            "E11": seed_poa_study(pgrid, uniform_beliefs=False, label="E11"),
        }

    return {"quick": one(True), "full": one(False)}


if __name__ == "__main__":  # pragma: no cover
    import json
    import pathlib

    target = pathlib.Path(__file__).parent.parent / "tests" / "data"
    target /= "mixed_seed_baseline.json"
    with open(target, "w", encoding="utf-8") as fh:
        json.dump(generate_baseline(), fh, indent=1)
        fh.write("\n")
    print(f"wrote {target}")
