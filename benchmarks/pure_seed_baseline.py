"""The pre-batch Section 3 pure-strategy pipeline, vendored verbatim.

Every function below is an unmodified copy of the sequential
implementation this repository shipped before the batched pure-strategy
engine existed (``equilibria/nashify.py``, ``equilibria/potential.py``'s
evaluators and the sampled/exhaustive four-cycle gap, and the
E1-E4/E6 chunk kernels of ``experiments/algorithms.py`` and
``experiments/campaign.py`` as of commit 67044e4), with only the
intra-module imports rewired to this file. ``benchmarks/bench_pure.py``
times it as the historical per-game baseline, and ``python
benchmarks/pure_seed_baseline.py`` regenerates
``tests/data/pure_seed_baseline.json`` — the frozen fingerprint the
regression tests pin the batched E1-E4/E6 pipeline against, bit for bit.

Modules the batched-pure PR did *not* refactor (the paper's three
algorithms, the pure-NE conditions and enumerator, the response graphs,
the random-game generators, the latency engine) are imported from the
library: they are byte-identical to what the seed pipeline called, so
importing them keeps the baseline honest without duplicating unchanged
code.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.equilibria.best_response import best_response_dynamics
from repro.equilibria.conditions import is_pure_nash
from repro.equilibria.enumeration import count_pure_nash
from repro.equilibria.game_graph import best_response_graph, find_response_cycle
from repro.equilibria.symmetric import asymmetric
from repro.equilibria.two_links import atwolinks
from repro.equilibria.uniform import auniform
from repro.errors import AlgorithmDomainError, ConvergenceError
from repro.generators.games import (
    random_game,
    random_kp_game,
    random_symmetric_game,
    random_two_link_game,
    random_uniform_beliefs_game,
)
from repro.generators.suites import GridCell
from repro.model.latency import pure_latency_of_user
from repro.model.profiles import PureProfile, as_assignment, loads_of
from repro.model.social import enumerate_assignments, social_costs_of_pure
from repro.util.rng import as_generator, stable_seed


# --- seed equilibria/nashify.py ------------------------------------ #


def seed_objective_congestion(game, sigma):
    """Common-beliefs objective congestion ``max_l L_l / c^l``."""
    caps = game.capacities[0]
    loads = loads_of(sigma, game.weights, game.num_links, game.initial_traffic)
    return float((loads / caps).max())


def seed_nashify_common_beliefs(game, start, *, max_steps=100_000):
    """The pre-batch nashification loop (Feldmann et al. style).

    Returns the fields of the library's ``NashifyResult`` as a plain
    dict so the bench can compare against the lockstep engine without
    importing the refactored result type.
    """
    from repro.model.latency import deviation_latencies

    sigma = as_assignment(start, game.num_users, game.num_links).copy()
    caps = game.capacities[0]
    sc1_before, sc2_before = social_costs_of_pure(game, sigma)
    congestion_before = seed_objective_congestion(game, sigma)

    steps = 0
    while steps < max_steps:
        dev = deviation_latencies(game, sigma)
        current = dev[np.arange(game.num_users), sigma]
        scale = np.maximum(current, 1.0)
        movers = np.flatnonzero(dev.min(axis=1) < current - 1e-9 * scale)
        if movers.size == 0:
            break
        loads = loads_of(sigma, game.weights, game.num_links, game.initial_traffic)
        congestion = loads / caps
        worst_links = np.flatnonzero(
            congestion >= congestion.max() * (1 - 1e-12)
        )
        on_worst = movers[np.isin(sigma[movers], worst_links)]
        user = int(on_worst[0]) if on_worst.size else int(movers[0])
        sigma[user] = int(np.argmin(dev[user]))
        steps += 1
    else:
        raise ConvergenceError(
            f"nashification exceeded {max_steps} steps (weights n={game.num_users})"
        )

    profile = PureProfile(sigma, game.num_links)
    sc1_after, sc2_after = social_costs_of_pure(game, profile)
    return {
        "links": sigma.copy(),
        "steps": steps,
        "sc1_before": sc1_before,
        "sc1_after": sc1_after,
        "sc2_before": sc2_before,
        "sc2_after": sc2_after,
        "max_congestion_before": congestion_before,
        "max_congestion_after": seed_objective_congestion(game, profile.links),
    }


def seed_nashify(game, start, *, max_steps=100_000):
    """The pre-batch general nashification (best-response improvement)."""
    sigma = as_assignment(start, game.num_users, game.num_links)
    sc1_before, sc2_before = social_costs_of_pure(game, sigma)
    mean_caps = game.capacities.mean(axis=0)
    loads = loads_of(sigma, game.weights, game.num_links, game.initial_traffic)
    congestion_before = float((loads / mean_caps).max())

    result = best_response_dynamics(
        game, sigma, schedule="max_regret", max_steps=max_steps,
        raise_on_budget=True,
    )
    profile = result.profile
    if not is_pure_nash(game, profile):  # pragma: no cover - defensive
        raise ConvergenceError("dynamics stopped at a non-equilibrium")
    sc1_after, sc2_after = social_costs_of_pure(game, profile)
    loads_after = loads_of(
        profile.links, game.weights, game.num_links, game.initial_traffic
    )
    return {
        "links": np.asarray(profile.links).copy(),
        "steps": result.steps,
        "sc1_before": sc1_before,
        "sc1_after": sc1_after,
        "sc2_before": sc2_before,
        "sc2_after": sc2_after,
        "max_congestion_before": congestion_before,
        "max_congestion_after": float((loads_after / mean_caps).max()),
    }


# --- seed equilibria/potential.py ----------------------------------- #


def seed_weighted_potential(game, assignment):
    """The weighted potential for common-beliefs games."""
    if not game.has_common_beliefs():
        raise AlgorithmDomainError(
            "the weighted potential requires common beliefs "
            "(all users sharing one effective-capacity row)"
        )
    sigma = as_assignment(assignment, game.num_users, game.num_links)
    w = game.weights
    caps = game.capacities[0]  # common row
    loads = loads_of(sigma, w, game.num_links, game.initial_traffic)
    own = np.bincount(sigma, weights=w**2, minlength=game.num_links)
    return float(((loads**2 + own) / (2.0 * caps)).sum())


def seed_ordinal_potential_symmetric(game, assignment):
    """The ordinal potential for the symmetric-users case."""
    from scipy.special import gammaln

    if not game.has_symmetric_users():
        raise AlgorithmDomainError(
            "the ordinal potential requires symmetric users (equal weights)"
        )
    if np.any(game.initial_traffic > 0):
        raise AlgorithmDomainError(
            "the ordinal potential requires zero initial traffic"
        )
    sigma = as_assignment(assignment, game.num_users, game.num_links)
    counts = np.bincount(sigma, minlength=game.num_links)
    log_factorials = float(gammaln(counts + 1.0).sum())
    users = np.arange(game.num_users)
    return log_factorials - float(np.log(game.capacities[users, sigma]).sum())


def seed_verify_weighted_potential(game, assignment, user, new_link, *, rtol=1e-9):
    """Check ``Delta Phi = w_i * Delta lambda_i`` for one unilateral move."""
    sigma = as_assignment(assignment, game.num_users, game.num_links).copy()
    phi_before = seed_weighted_potential(game, sigma)
    lat_before = pure_latency_of_user(game, sigma, user)
    sigma[user] = new_link
    phi_after = seed_weighted_potential(game, sigma)
    lat_after = pure_latency_of_user(game, sigma, user)
    lhs = phi_after - phi_before
    rhs = game.weights[user] * (lat_after - lat_before)
    scale = max(abs(lhs), abs(rhs), 1.0)
    return abs(lhs - rhs) <= rtol * scale


def seed_verify_ordinal_potential_symmetric(
    game, assignment, user, new_link, *, rtol=1e-9
):
    """Check ``Delta Phi = log lambda_after - log lambda_before``."""
    sigma = as_assignment(assignment, game.num_users, game.num_links).copy()
    phi_before = seed_ordinal_potential_symmetric(game, sigma)
    lat_before = pure_latency_of_user(game, sigma, user)
    sigma[user] = new_link
    phi_after = seed_ordinal_potential_symmetric(game, sigma)
    lat_after = pure_latency_of_user(game, sigma, user)
    lhs = phi_after - phi_before
    rhs = np.log(lat_after) - np.log(lat_before)
    scale = max(abs(lhs), abs(rhs), 1.0)
    return abs(lhs - rhs) <= rtol * scale


def seed_four_cycle_gap(game, base, i, j, links_i, links_j):
    """Net deviator cost change around one two-player four-cycle."""
    a, a2 = links_i
    b, b2 = links_j
    sigma = base.copy()
    sigma[i], sigma[j] = a, b

    total = 0.0
    # move order: i: a->a2, j: b->b2, i: a2->a, j: b2->b
    for user, new_link in ((i, a2), (j, b2), (i, a), (j, b)):
        before = pure_latency_of_user(game, sigma, user)
        sigma[user] = new_link
        after = pure_latency_of_user(game, sigma, user)
        total += after - before
    return total


def seed_exact_potential_cycle_gap(game, *, num_samples=None, seed=None):
    """Maximum |cycle sum| over two-player four-cycles (pre-batch loop)."""
    n, m = game.num_users, game.num_links
    pairs = list(itertools.combinations(range(n), 2))
    link_pairs = list(itertools.permutations(range(m), 2))
    exhaustive_count = len(pairs) * len(link_pairs) ** 2 * m ** max(n - 2, 0)

    worst = 0.0
    if num_samples is None and exhaustive_count <= 200_000:
        others = [u for u in range(n)]
        for i, j in pairs:
            rest = [u for u in others if u not in (i, j)]
            if rest:
                rest_assignments = enumerate_assignments(len(rest), m)
            else:
                rest_assignments = np.zeros((1, 0), dtype=np.intp)
            for rest_row in rest_assignments:
                base = np.zeros(n, dtype=np.intp)
                base[rest] = rest_row
                for li in link_pairs:
                    for lj in link_pairs:
                        gap = seed_four_cycle_gap(game, base, i, j, li, lj)
                        worst = max(worst, abs(gap))
        return worst

    rng = as_generator(seed)
    samples = 1_000 if num_samples is None else int(num_samples)
    for _ in range(samples):
        i, j = rng.choice(n, size=2, replace=False)
        base = rng.integers(0, m, size=n).astype(np.intp)
        li = tuple(rng.choice(m, size=2, replace=False))
        lj = tuple(rng.choice(m, size=2, replace=False))
        gap = seed_four_cycle_gap(game, base, int(i), int(j), li, lj)
        worst = max(worst, abs(gap))
    return worst


# --- seed experiments/algorithms.py chunk kernels ------------------- #


def seed_examine_e1_chunk(chunk):
    """How many of the chunk's two-link games Atwolinks solves to a NE."""
    ok = 0
    for seed in chunk.seeds():
        game = random_two_link_game(
            chunk.num_users, with_initial_traffic=True, seed=seed
        )
        if is_pure_nash(game, atwolinks(game)):
            ok += 1
    return ok


def seed_examine_e2_chunk(chunk):
    """How many of the chunk's symmetric games Asymmetric solves."""
    ok = 0
    for seed in chunk.seeds():
        game = random_symmetric_game(chunk.num_users, chunk.num_links, seed=seed)
        if is_pure_nash(game, asymmetric(game)):
            ok += 1
    return ok


def seed_examine_e3_chunk(chunk):
    """How many of the chunk's uniform-beliefs games Auniform solves."""
    ok = 0
    for seed in chunk.seeds():
        game = random_uniform_beliefs_game(
            chunk.num_users, chunk.num_links, with_initial_traffic=True, seed=seed
        )
        if is_pure_nash(game, auniform(game)):
            ok += 1
    return ok


def seed_examine_e4_chunk(chunk):
    """(games with a pure NE, best-response-graph cycles) for one chunk."""
    with_pne = 0
    cycles = 0
    for seed in chunk.seeds():
        game = random_game(chunk.num_users, chunk.num_links, seed=seed)
        if count_pure_nash(game) > 0:
            with_pne += 1
        graph = best_response_graph(game)
        if find_response_cycle(graph) is not None:
            cycles += 1
    return with_pne, cycles


# --- seed experiments/campaign.py E6 chunk kernels ------------------ #


def seed_probe_move(label, game, seed):
    """A reproducible (profile, user, new link) probe for one instance."""
    draw = as_generator(stable_seed(label, "probe", seed))
    sigma = draw.integers(0, game.num_links, size=game.num_users)
    user = int(draw.integers(game.num_users))
    new_link = int(draw.integers(game.num_links))
    return sigma, user, new_link


def seed_examine_e6_gap_chunk(chunk):
    """Exact-potential 4-cycle gaps for the chunk's general games."""
    gaps = []
    for seed in chunk.seeds():
        game = random_game(chunk.num_users, chunk.num_links, seed=seed)
        gaps.append(
            float(seed_exact_potential_cycle_gap(game, num_samples=200, seed=seed))
        )
    return gaps


def seed_examine_e6_kp_chunk(chunk):
    """Weighted-potential identity verdict over the chunk's KP games."""
    ok = True
    for seed in chunk.seeds():
        game = random_kp_game(chunk.num_users, chunk.num_links, seed=seed)
        sigma, user, new_link = seed_probe_move(chunk.label, game, seed)
        ok = ok and seed_verify_weighted_potential(game, sigma, user, new_link)
    return bool(ok)


def seed_examine_e6_sym_chunk(chunk):
    """Ordinal-potential identity verdict over the chunk's symmetric games."""
    ok = True
    for seed in chunk.seeds():
        game = random_symmetric_game(chunk.num_users, chunk.num_links, seed=seed)
        sigma, user, new_link = seed_probe_move(chunk.label, game, seed)
        ok = ok and seed_verify_ordinal_potential_symmetric(
            game, sigma, user, new_link
        )
    return bool(ok)


# --- the frozen grids (as of the pre-batch pipeline) ---------------- #


def e1_cells(*, quick):
    sizes = [2, 3, 5, 8, 13, 21] if quick else [2, 3, 5, 8, 13, 21, 34, 55, 89]
    reps = 10 if quick else 30
    return [GridCell(n, 2, reps) for n in sizes]


def e2_cells(*, quick):
    pairs = [(3, 2), (5, 3), (8, 4)] if quick else [
        (3, 2), (5, 3), (8, 4), (13, 5), (21, 6), (34, 8),
    ]
    reps = 10 if quick else 30
    return [GridCell(n, m, reps) for (n, m) in pairs]


def e3_cells(*, quick):
    pairs = [(4, 2), (8, 3), (16, 4)] if quick else [
        (4, 2), (8, 3), (16, 4), (32, 5), (64, 8), (128, 8), (512, 16),
    ]
    reps = 10 if quick else 30
    return [GridCell(n, m, reps) for (n, m) in pairs]


def e4_cells(*, quick):
    reps = 40 if quick else 250
    return [GridCell(3, m, reps) for m in [2, 3, 4]]


def e6_cells(*, quick):
    reps = 5 if quick else 25
    return {
        "E6-gap": GridCell(3, 3, reps),
        "E6-kp": GridCell(4, 3, reps),
        "E6-sym": GridCell(4, 3, reps),
    }


class _Chunk:
    """A minimal stand-in for the runtime's ReplicationChunk (one cell)."""

    def __init__(self, label, cell):
        self.label = label
        self.num_users = cell.num_users
        self.num_links = cell.num_links
        self.rep_lo = 0
        self.rep_hi = cell.replications

    def seeds(self):
        return [
            stable_seed(self.label, self.num_users, self.num_links, rep)
            for rep in range(self.rep_lo, self.rep_hi)
        ]


def generate_baseline():
    """Recompute the frozen E1-E4/E6 fingerprints with the seed pipeline."""
    out = {}
    for quick in (True, False):
        mode = "quick" if quick else "full"
        fingerprint = {}
        for label, cells, kernel in (
            ("E1", e1_cells(quick=quick), seed_examine_e1_chunk),
            ("E2", e2_cells(quick=quick), seed_examine_e2_chunk),
            ("E3", e3_cells(quick=quick), seed_examine_e3_chunk),
        ):
            fingerprint[label] = [
                [cell.num_users, cell.num_links, cell.replications,
                 kernel(_Chunk(label, cell))]
                for cell in cells
            ]
        fingerprint["E4"] = []
        for cell in e4_cells(quick=quick):
            with_pne, cycles = seed_examine_e4_chunk(_Chunk("E4", cell))
            fingerprint["E4"].append(
                [cell.num_users, cell.num_links, cell.replications,
                 with_pne, cycles]
            )
        e6 = e6_cells(quick=quick)
        fingerprint["E6"] = {
            "gaps": seed_examine_e6_gap_chunk(_Chunk("E6-gap", e6["E6-gap"])),
            "kp_ok": seed_examine_e6_kp_chunk(_Chunk("E6-kp", e6["E6-kp"])),
            "sym_ok": seed_examine_e6_sym_chunk(_Chunk("E6-sym", e6["E6-sym"])),
        }
        out[mode] = fingerprint
    return out


if __name__ == "__main__":  # pragma: no cover
    import json
    from pathlib import Path

    target = Path(__file__).resolve().parent.parent / "tests" / "data"
    target /= "pure_seed_baseline.json"
    with target.open("w") as fh:
        json.dump(generate_baseline(), fh, indent=1)
        fh.write("\n")
    print(f"wrote {target}")
