"""Batched vs per-game fixed-point solving (the solver-tier gate).

Measures the E13 solver load two ways:

* ``batched``    — :func:`repro.batch.fixpoint.batch_fixpoint_mixed_nash`
  over the whole game stack at once, exactly as the E13 chunk kernels
  and the service ``fixpoint`` op drive it: every round updates all
  ``B`` games' users in one ``(B, m)`` sweep per user;
* ``sequential`` — the same solver invoked game by game (``B = 1``),
  the shape a naive per-query loop would take. The two paths are
  *bitwise identical* per game (trajectories are independent of
  batch-mates — the tier-1 invariance property pins this), so the
  comparison isolates pure batching leverage, not algorithmic drift.

The >= 5x gate runs at an E13-representative width. The >= 2x numba
gate holds the fused ``fixpoint_loop`` hook to its reason for existing
and skips visibly without the ``[jit]`` extra; both land in
``BENCH_trajectory.json`` so the solver's performance history is
tracked per commit.
"""

from __future__ import annotations

import numpy as np
import pytest
from _timing import _timed

from repro.batch.backend import available_backends, use_backend
from repro.batch.container import GameBatch
from repro.batch.fixpoint import batch_fixpoint_mixed_nash
from repro.util.rng import stable_seed

LABEL = "bench-fixpoint"
NUM_GAMES = 48
NUM_USERS = 16
NUM_LINKS = 4


def _stack() -> GameBatch:
    seeds = [
        stable_seed(LABEL, NUM_USERS, NUM_LINKS, rep)
        for rep in range(NUM_GAMES)
    ]
    return GameBatch.from_seeds(seeds, NUM_USERS, NUM_LINKS)


def batched_solve(batch: GameBatch):
    return batch_fixpoint_mixed_nash(
        batch.weights, batch.capacities, batch.initial_traffic
    )


def sequential_solve(batch: GameBatch):
    return [
        batch_fixpoint_mixed_nash(
            batch.weights[i : i + 1],
            batch.capacities[i : i + 1],
            batch.initial_traffic[i : i + 1],
        )
        for i in range(len(batch))
    ]


def test_fixpoint_batched_speedup_at_least_5x(report, trajectory):
    """Acceptance gate: one stacked solve >= 5x the per-game loop."""
    batch = _stack()
    together = batched_solve(batch)
    alone = sequential_solve(batch)
    # Bitwise agreement first, or the timing comparison is meaningless.
    assert bool(together.converged.all())
    for i, single in enumerate(alone):
        assert np.array_equal(
            single.probabilities[0], together.probabilities[i]
        )
        assert single.rounds[0] == together.rounds[i]

    batched_times = [_timed(lambda: batched_solve(batch)) for _ in range(5)]
    sequential_times = [
        _timed(lambda: sequential_solve(batch)) for _ in range(3)
    ]
    trajectory.record("fixpoint-solver", batched_times, sequential_times)
    batched, sequential = min(batched_times), min(sequential_times)
    ratio = sequential / batched
    report.append(
        f"[fixpoint] {NUM_GAMES} games at ({NUM_USERS}, {NUM_LINKS}): "
        f"batched {batched * 1e3:.2f} ms, per-game loop "
        f"{sequential * 1e3:.2f} ms, speedup {ratio:.1f}x"
    )
    assert ratio >= 5.0, f"batched fixpoint solve only {ratio:.2f}x faster"


@pytest.mark.skipif(
    not available_backends().get("numba", False),
    reason="numba not installed — the fused fixpoint_loop gate needs "
    "the [jit] extra",
)
def test_fixpoint_numba_speedup_at_least_2x(report, trajectory):
    """Acceptance gate: the fused JIT loop >= 2x the NumPy reference."""
    batch = _stack()
    reference = batched_solve(batch)
    with use_backend("numba"):
        batched_solve(batch)  # JIT warm-up outside the timed region
        jit = batched_solve(batch)
    np.testing.assert_array_equal(
        jit.probabilities, reference.probabilities
    )
    np.testing.assert_array_equal(jit.rounds, reference.rounds)

    numpy_times = [_timed(lambda: batched_solve(batch)) for _ in range(5)]
    with use_backend("numba"):
        jit_times = [_timed(lambda: batched_solve(batch)) for _ in range(5)]
    trajectory.record("fixpoint-numba", jit_times, numpy_times)
    ratio = min(numpy_times) / min(jit_times)
    report.append(
        f"[fixpoint] numba fused loop {min(jit_times) * 1e3:.2f} ms vs "
        f"numpy {min(numpy_times) * 1e3:.2f} ms, speedup {ratio:.1f}x"
    )
    assert ratio >= 2.0, f"fused fixpoint loop only {ratio:.2f}x faster"


def test_batched_fixpoint_solve(benchmark):
    batch = _stack()
    result = benchmark(lambda: batched_solve(batch))
    assert bool(result.converged.all())


@pytest.mark.parametrize(("n", "m"), [(32, 6), (64, 8)])
def test_fixpoint_widths(benchmark, n, m):
    """Solver throughput at the E13 grid's larger widths."""
    seeds = [stable_seed(LABEL, n, m, rep) for rep in range(8)]
    batch = GameBatch.from_seeds(seeds, n, m)
    result = benchmark(
        lambda: batch_fixpoint_mixed_nash(
            batch.weights, batch.capacities, batch.initial_traffic
        )
    )
    assert bool(result.converged.all())
