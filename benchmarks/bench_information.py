"""Extension benchmark: value-of-information studies.

Not a paper table — this measures the cost of the library's added
information analysis (S30) so users can size their own studies.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.information import run_information_study
from repro.model.beliefs import Belief
from repro.model.state import StateSpace


def test_information_study(benchmark, report):
    regimes = StateSpace([[20.0, 1.0], [1.0, 20.0]])
    truth = np.array([0.9, 0.1])
    policies = {
        "informed": Belief(truth),
        "agnostic": Belief([0.5, 0.5]),
        "adversarial": Belief([0.05, 0.95]),
    }
    study = benchmark.pedantic(
        lambda: run_information_study(
            regimes, truth, policies, rounds=30, seed=0
        ),
        rounds=1,
        iterations=1,
    )
    assert study.rounds == 30
    ordered = sorted(study.mean_latency.items(), key=lambda kv: kv[1])
    report.append(
        "[info] mean objective latency by policy: "
        + ", ".join(f"{k}={v:.3f}" for k, v in ordered)
    )
