"""Batched vs per-game support enumeration (the stacked-solver gate).

Measures the E7/E9 support-enumeration cross-check two ways:

* ``batched`` — :func:`repro.batch.support.batch_enumerate_mixed_nash`
  driven exactly as the E7/E9 kernels drive it: each cell's replication
  block stacked into one call, whole support-profile groups solved as
  ``(P * B, k, k)`` :func:`numpy.linalg.solve` stacks;
* ``looped``  — the per-game enumeration exactly as it existed before
  the stacked solver, vendored verbatim in
  ``benchmarks/support_seed_baseline.py`` (per support profile: Python
  matrix assembly + one ``lstsq``). Using today's
  ``enumerate_mixed_nash`` instead would fold the batched engine's own
  ``B = 1`` view into the baseline and understate the gain.

Both sides must agree game by game (same equilibrium count, matching
matrices) before any timing is trusted; the tier-1 suite pins the same
contract through the frozen E7/E9 fingerprints. The >= 5x gate runs at
the experiments' actual widths: the E7 grid at 12 replications per cell
and the E9 grid at 8 — the campaign's standard cross-check load.
"""

from __future__ import annotations

import numpy as np
import pytest
from _timing import _timed
from support_seed_baseline import seed_enumerate_mixed_nash

from repro.batch.container import GameBatch
from repro.batch.support import batch_enumerate_mixed_nash
from repro.generators.suites import small_verification_grid
from repro.util.rng import stable_seed

LABEL = "bench-support"
E7_GRID = list(small_verification_grid(replications=12))
E9_GRID = list(small_verification_grid(replications=8))


def _cell_batches(grid, *, label=LABEL):
    out = []
    for cell in grid:
        seeds = [
            stable_seed(label, cell.num_users, cell.num_links, rep)
            for rep in range(cell.replications)
        ]
        out.append(GameBatch.from_seeds(seeds, cell.num_users, cell.num_links))
    return out


def batched_cross_check(batches):
    """Enumerate every batch with the stacked solver (the E7/E9 path)."""
    return [
        batch_enumerate_mixed_nash(
            b.weights, b.capacities, b.initial_traffic
        )
        for b in batches
    ]


def looped_cross_check(batches):
    """Enumerate game by game with the vendored pre-batch code."""
    return [
        [seed_enumerate_mixed_nash(batch.game(i)) for i in range(len(batch))]
        for batch in batches
    ]


def _equilibria_agree(batched, looped, *, atol=1e-8):
    """Same per-game equilibrium sets (count + matched matrices)."""
    for cell_b, cell_l in zip(batched, looped):
        for eqs_b, eqs_l in zip(cell_b, cell_l):
            if len(eqs_b) != len(eqs_l):
                return False
            unmatched = list(eqs_l)
            for eq in eqs_b:
                hit = next(
                    (
                        other
                        for other in unmatched
                        if np.allclose(eq.matrix, other.matrix, atol=atol)
                    ),
                    None,
                )
                if hit is None:
                    return False
                unmatched.remove(hit)
    return True


def test_support_speedup_at_least_5x(report, trajectory):
    """Acceptance gate: stacked support enumeration >= 5x the seed loop."""
    batches = _cell_batches(E7_GRID) + _cell_batches(E9_GRID)
    # The vendored per-game loop must agree with the stacked solver on
    # every game, otherwise the timing comparison is meaningless. (The
    # solvers differ — stacked LU vs per-profile lstsq — so agreement is
    # checked at matching tolerance, not bitwise; the frozen E7/E9
    # fingerprints pin the count-level contract bit for bit.)
    assert _equilibria_agree(batched_cross_check(batches), looped_cross_check(batches))

    batched_times = [
        _timed(lambda: batched_cross_check(batches)) for _ in range(5)
    ]
    looped_times = [_timed(lambda: looped_cross_check(batches)) for _ in range(3)]
    trajectory.record("support-enumeration", batched_times, looped_times)
    batched, looped = min(batched_times), min(looped_times)
    ratio = looped / batched
    report.append(
        f"[support] E7 (x12) + E9 (x8) cross-check widths: batched "
        f"{batched * 1e3:.2f} ms, seed per-game loop {looped * 1e3:.2f} ms, "
        f"speedup {ratio:.1f}x"
    )
    assert ratio >= 5.0, f"batched support enumeration only {ratio:.2f}x faster"


def test_batched_cross_check(benchmark):
    batches = _cell_batches(E7_GRID)
    results = benchmark(lambda: batched_cross_check(batches))
    assert sum(len(eqs) for cell in results for eqs in cell) > 0


def test_looped_cross_check(benchmark):
    batches = _cell_batches(E7_GRID)
    results = benchmark(lambda: looped_cross_check(batches))
    assert sum(len(eqs) for cell in results for eqs in cell) > 0


@pytest.mark.parametrize("batch_size", [8, 64, 256])
def test_batch_enumerate_widths(benchmark, batch_size):
    """Stacked-solver throughput per stack width (n=3, m=3)."""
    seeds = [stable_seed("bench-support-width", i) for i in range(batch_size)]
    batch = GameBatch.from_seeds(seeds, 3, 3)
    results = benchmark(
        lambda: batch_enumerate_mixed_nash(
            batch.weights, batch.capacities, batch.initial_traffic
        )
    )
    assert len(results) == batch_size
