"""E1 — Figure 1 / Theorem 3.3: ``Atwolinks`` benchmark.

Regenerates the E1 row: the algorithm returns a verified pure NE on every
instance and its runtime growth stays within the stated O(n^2) class
(vectorisation typically lands the measured exponent well below 2).
"""

from __future__ import annotations

import pytest

from repro.equilibria.conditions import is_pure_nash
from repro.equilibria.two_links import atwolinks, tolerances
from repro.generators.games import random_two_link_game
from repro.util.rng import stable_seed


@pytest.mark.parametrize("n", [8, 32, 128, 512])
def test_atwolinks_scaling(benchmark, n):
    game = random_two_link_game(
        n, with_initial_traffic=True, seed=stable_seed("bench-e1", n)
    )
    profile = benchmark(lambda: atwolinks(game))
    assert is_pure_nash(game, profile)


def test_tolerance_kernel(benchmark):
    """The inner O(n) pass dominating each of the n rounds."""
    game = random_two_link_game(1024, seed=stable_seed("bench-e1", "tol"))
    alpha = benchmark(lambda: tolerances(game))
    assert alpha.shape == (1024, 2)


def test_e1_correctness_series(benchmark, report):
    """Correctness across the E1 grid, reported as a series."""
    rows = []
    def run():
        ok = 0
        for n in (2, 5, 13, 34, 89):
            game = random_two_link_game(
                n, with_initial_traffic=True, seed=stable_seed("bench-e1s", n)
            )
            if is_pure_nash(game, atwolinks(game)):
                ok += 1
        return ok
    ok = benchmark.pedantic(run, rounds=3, iterations=1)
    assert ok == 5
    report.append("[E1] Atwolinks: 5/5 sizes returned verified pure NE")
