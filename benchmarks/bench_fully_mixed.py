"""E7/E8 — Theorems 4.6-4.8: fully mixed NE benchmarks.

Corollary 4.7 promises O(nm); the scaling benchmarks confirm the closed
form's evaluation cost is a handful of BLAS-1/2 kernels even at
n=2000, m=100. The support-enumeration cross-check (uniqueness evidence)
is benchmarked at verification scale.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.equilibria.conditions import is_mixed_nash
from repro.equilibria.fully_mixed import fully_mixed_candidate
from repro.equilibria.support_enum import enumerate_mixed_nash
from repro.generators.games import random_game, random_uniform_beliefs_game
from repro.util.rng import stable_seed


@pytest.mark.parametrize("n,m", [(10, 4), (100, 10), (2000, 100)])
def test_closed_form_scaling(benchmark, n, m):
    game = random_game(n, m, seed=stable_seed("bench-e7", n, m))
    cand = benchmark(lambda: fully_mixed_candidate(game))
    np.testing.assert_allclose(cand.probabilities.sum(axis=1), 1.0, atol=1e-8)


def test_support_enumeration_cross_check(benchmark):
    game = random_game(3, 2, seed=stable_seed("bench-e7", "se"))
    eqs = benchmark.pedantic(
        lambda: enumerate_mixed_nash(game), rounds=2, iterations=1
    )
    assert len(eqs) >= 1


def test_e7_e8_series(benchmark, report):
    def run():
        interior = nash_ok = equi = 0
        for rep in range(30):
            game = random_game(3, 3, concentration=5.0, seed=stable_seed("bench-e78", rep))
            cand = fully_mixed_candidate(game)
            if cand.exists:
                interior += 1
                if is_mixed_nash(game, cand.profile(), tol=1e-7):
                    nash_ok += 1
        for rep in range(30):
            game = random_uniform_beliefs_game(4, 3, seed=stable_seed("bench-e8", rep))
            cand = fully_mixed_candidate(game)
            if np.abs(cand.probabilities - 1.0 / 3.0).max() < 1e-9:
                equi += 1
        return interior, nash_ok, equi
    interior, nash_ok, equi = benchmark.pedantic(run, rounds=1, iterations=1)
    assert nash_ok == interior
    assert equi == 30
    report.append(
        f"[E7] closed form: {nash_ok}/{interior} interior candidates verified "
        "as the (unique) fully mixed NE"
    )
    report.append(
        "[E8] uniform beliefs: 30/30 instances give the equiprobable p=1/m"
    )
