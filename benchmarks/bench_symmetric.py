"""E2 — Figure 2 / Theorem 3.5: ``Asymmetric`` benchmark."""

from __future__ import annotations

import pytest

from repro.equilibria.conditions import is_pure_nash
from repro.equilibria.symmetric import asymmetric
from repro.generators.games import random_symmetric_game
from repro.util.rng import stable_seed


@pytest.mark.parametrize("n,m", [(8, 3), (32, 4), (128, 6), (256, 8)])
def test_asymmetric_scaling(benchmark, n, m):
    game = random_symmetric_game(n, m, seed=stable_seed("bench-e2", n, m))
    profile = benchmark(lambda: asymmetric(game))
    assert is_pure_nash(game, profile)


def test_e2_correctness_series(benchmark, report):
    def run():
        ok = 0
        for n, m in ((3, 2), (8, 4), (21, 6), (55, 8)):
            game = random_symmetric_game(
                n, m, seed=stable_seed("bench-e2s", n, m)
            )
            if is_pure_nash(game, asymmetric(game)):
                ok += 1
        return ok
    ok = benchmark.pedantic(run, rounds=3, iterations=1)
    assert ok == 4
    report.append("[E2] Asymmetric: 4/4 (n, m) cells returned verified pure NE")
