"""E4 — Section 3.1: three-user existence and best-response acyclicity."""

from __future__ import annotations

import pytest

from repro.equilibria.enumeration import count_pure_nash
from repro.equilibria.game_graph import best_response_graph, find_response_cycle
from repro.generators.games import random_game
from repro.util.rng import stable_seed


@pytest.mark.parametrize("m", [2, 3, 4])
def test_three_user_existence_check(benchmark, m):
    game = random_game(3, m, seed=stable_seed("bench-e4", m))
    count = benchmark(lambda: count_pure_nash(game))
    assert count >= 1


def test_best_response_graph_build(benchmark):
    game = random_game(3, 4, seed=stable_seed("bench-e4", "graph"))
    graph = benchmark(lambda: best_response_graph(game))
    assert find_response_cycle(graph) is None


def test_e4_series(benchmark, report):
    def run():
        with_pne = cycles = 0
        for rep in range(20):
            game = random_game(3, 3, seed=stable_seed("bench-e4s", rep))
            if count_pure_nash(game) > 0:
                with_pne += 1
            if find_response_cycle(best_response_graph(game)) is not None:
                cycles += 1
        return with_pne, cycles
    with_pne, cycles = benchmark.pedantic(run, rounds=1, iterations=1)
    assert with_pne == 20 and cycles == 0
    report.append(
        "[E4] n=3: 20/20 instances possess a pure NE; 0 best-response cycles"
    )
