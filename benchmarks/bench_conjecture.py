"""E5 — Section 3.2 / Conjecture 3.7: the simulation campaign benchmark."""

from __future__ import annotations

import pytest

from repro.analysis.conjecture import run_conjecture_campaign
from repro.equilibria.best_response import best_response_dynamics
from repro.equilibria.enumeration import count_pure_nash, exists_pure_nash
from repro.generators.games import random_game
from repro.generators.suites import GridCell
from repro.util.rng import stable_seed


@pytest.mark.parametrize("n,m", [(4, 3), (6, 3), (8, 2)])
def test_existence_decision(benchmark, n, m):
    """Cost of deciding pure-NE existence exhaustively for one instance."""
    game = random_game(n, m, seed=stable_seed("bench-e5", n, m))
    assert benchmark(lambda: exists_pure_nash(game))


@pytest.mark.parametrize("n,m", [(6, 3), (12, 4)])
def test_brd_solver(benchmark, n, m):
    """Cost of locating a pure NE by best-response dynamics."""
    game = random_game(n, m, seed=stable_seed("bench-e5brd", n, m))
    result = benchmark(
        lambda: best_response_dynamics(game, seed=0, schedule="round_robin")
    )
    assert result.converged


def test_e5_campaign(benchmark, report):
    grid = [GridCell(n, m, 6) for (n, m) in [(2, 2), (3, 3), (4, 3), (5, 2)]]
    campaign = benchmark.pedantic(
        lambda: run_conjecture_campaign(grid, label="bench-e5c"),
        rounds=1,
        iterations=1,
    )
    assert campaign.conjecture_supported
    report.append(
        f"[E5] conjecture campaign: {campaign.total_instances} instances, "
        f"{campaign.counterexamples} counterexamples"
    )
    report.append(campaign.to_table().render())
