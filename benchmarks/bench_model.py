"""Kernel benchmarks for the model layer (the hot paths of everything).

These quantify the vectorisation choices of DESIGN.md section 5:
effective-capacity reduction (one matmul), deviation-latency tensors,
and the all-profiles latency sweep behind exhaustive optimum/enumeration.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.model.beliefs import BeliefProfile
from repro.model.latency import deviation_latencies, mixed_latency_matrix, pure_latencies
from repro.model.social import all_pure_costs
from repro.model.state import StateSpace
from repro.generators.games import random_game
from repro.util.rng import stable_seed


@pytest.mark.parametrize("n,states", [(100, 16), (1000, 64)])
def test_effective_capacity_reduction(benchmark, n, states):
    space = StateSpace.random(states, 8, seed=stable_seed("bench-m", n))
    profile = BeliefProfile.random(space, n, seed=stable_seed("bench-m2", n))
    caps = benchmark(lambda: profile.effective_capacities())
    assert caps.shape == (n, 8)


@pytest.mark.parametrize("n", [100, 2000])
def test_pure_latency_kernel(benchmark, n):
    game = random_game(n, 8, seed=stable_seed("bench-m3", n))
    sigma = np.arange(n) % 8
    lat = benchmark(lambda: pure_latencies(game, sigma))
    assert lat.shape == (n,)


@pytest.mark.parametrize("n", [100, 2000])
def test_deviation_latency_kernel(benchmark, n):
    game = random_game(n, 8, seed=stable_seed("bench-m4", n))
    sigma = np.arange(n) % 8
    dev = benchmark(lambda: deviation_latencies(game, sigma))
    assert dev.shape == (n, 8)


def test_mixed_latency_kernel(benchmark):
    game = random_game(1000, 16, seed=stable_seed("bench-m5", 0))
    rng = np.random.default_rng(0)
    p = rng.dirichlet(np.ones(16), size=1000)
    lat = benchmark(lambda: mixed_latency_matrix(game, p))
    assert lat.shape == (1000, 16)


def test_all_profiles_sweep(benchmark):
    """The (m^n, n) latency sweep: 6561 profiles x 8 users."""
    game = random_game(8, 3, seed=stable_seed("bench-m6", 0))
    assignments, lat = benchmark(lambda: all_pure_costs(game))
    assert lat.shape == (6561, 8)
