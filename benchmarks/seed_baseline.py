"""The pre-batch campaign, vendored verbatim from the seed commit.

Every function below is an unmodified copy of the implementation this
repository shipped before the batched game engine existed (commit
eddd1a8, the seed), with only the intra-module imports rewired to this
file. ``benchmarks/bench_batch.py`` times it as the historical
per-instance baseline; keeping the real seed code (its call graph,
per-step profile validation, dataclass plumbing) is what makes the
measured speedup honest and stable — writing the baseline against
today's single-game APIs would fold this PR's own single-game speedups
into it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Sequence

import numpy as np

from repro.analysis.conjecture import CampaignResult, CellResult
from repro.errors import ConvergenceError, ModelError
from repro.generators.games import random_game
from repro.generators.suites import GridCell, conjecture_grid
from repro.model.game import UncertainRoutingGame
from repro.model.profiles import AssignmentLike, PureProfile, as_assignment, loads_of
from repro.model.social import MAX_EXHAUSTIVE_PROFILES, enumerate_assignments
from repro.util.rng import RandomState, as_generator
from repro.util.rng import stable_seed

Schedule = Literal["round_robin", "max_regret", "random"]



# --- seed model/latency.py ---------------------------------------- #


def deviation_latencies(
    game: UncertainRoutingGame, assignment: AssignmentLike
) -> np.ndarray:
    """The ``(n, m)`` matrix of *hypothetical* latencies under a pure profile.

    Entry ``(i, l)`` is the belief-expected latency user ``i`` would incur
    by unilaterally routing on link ``l`` while everyone else stays put:

    * on the current link it equals the current latency;
    * on any other link it is ``(t_l + load_l + w_i) / C[i, l]``.

    This matrix drives Nash checks and best-response computations: user
    ``i`` is satisfied iff its row attains its minimum at ``sigma_i``.
    """
    sigma = as_assignment(assignment, game.num_users, game.num_links)
    loads = loads_of(sigma, game.weights, game.num_links, game.initial_traffic)
    n = game.num_users
    users = np.arange(n)
    # load seen by user i on link l if it moves there: current load + w_i,
    # except on its own link where w_i is already counted.
    seen = loads[None, :] + game.weights[:, None]
    seen[users, sigma] -= game.weights
    return seen / game.capacities



# --- seed equilibria/best_response.py ------------------------------ #


@dataclass
class DynamicsResult:
    """Outcome of a response dynamic run.

    Attributes
    ----------
    profile:
        The final pure profile (a Nash equilibrium iff ``converged``).
    converged:
        True when no user had a profitable deviation at termination.
    steps:
        Number of accepted improvement moves.
    cycled:
        True when the trajectory revisited a profile (possible only for
        deterministic schedules; certifies a better-/best-response cycle).
    cycle:
        The cyclic segment of the trajectory when ``cycled``.
    history:
        Visited profiles in order (first entry is the start profile).
    """

    profile: PureProfile
    converged: bool
    steps: int
    cycled: bool = False
    cycle: list[PureProfile] = field(default_factory=list)
    history: list[PureProfile] = field(default_factory=list)


def _improvers(
    dev: np.ndarray, sigma: np.ndarray, tol: float
) -> np.ndarray:
    """Users with a strictly improving deviation under tolerance *tol*."""
    current = dev[np.arange(sigma.size), sigma]
    scale = np.maximum(current, 1.0)
    return np.flatnonzero(dev.min(axis=1) < current - tol * scale)


def _run_dynamics(
    game: UncertainRoutingGame,
    start: AssignmentLike | None,
    *,
    mode: Literal["best", "better"],
    schedule: Schedule,
    max_steps: int,
    tol: float,
    seed: RandomState,
    record_history: bool,
    raise_on_budget: bool,
) -> DynamicsResult:
    n, m = game.num_users, game.num_links
    rng = as_generator(seed)
    if start is None:
        sigma = rng.integers(0, m, size=n).astype(np.intp)
    else:
        sigma = as_assignment(start, n, m).copy()

    history: list[PureProfile] = []
    seen: dict[bytes, int] = {}
    deterministic = schedule != "random"

    def snapshot() -> PureProfile:
        return PureProfile(sigma.copy(), m)

    if record_history:
        history.append(snapshot())

    steps = 0
    while steps < max_steps:
        if deterministic:
            key = sigma.tobytes()
            if key in seen:
                # Deterministic revisit => the remaining trajectory cycles.
                start_idx = seen[key]
                cycle = history[start_idx:] if record_history else []
                return DynamicsResult(
                    profile=snapshot(),
                    converged=False,
                    steps=steps,
                    cycled=True,
                    cycle=cycle,
                    history=history,
                )
            seen[key] = len(history) - 1 if record_history else steps

        dev = deviation_latencies(game, sigma)
        movers = _improvers(dev, sigma, tol)
        if movers.size == 0:
            return DynamicsResult(
                profile=snapshot(), converged=True, steps=steps, history=history
            )

        if schedule == "round_robin":
            user = int(movers.min())
        elif schedule == "max_regret":
            current = dev[movers, sigma[movers]]
            regret = current - dev[movers].min(axis=1)
            user = int(movers[int(np.argmax(regret))])
        else:  # random
            user = int(rng.choice(movers))

        row = dev[user]
        if mode == "best":
            target = int(np.argmin(row))
        else:
            current_cost = row[sigma[user]]
            scale = max(current_cost, 1.0)
            better = np.flatnonzero(row < current_cost - tol * scale)
            target = int(better[0]) if deterministic else int(rng.choice(better))

        sigma[user] = target
        steps += 1
        if record_history:
            history.append(snapshot())

    if raise_on_budget:
        raise ConvergenceError(
            f"dynamics did not converge within {max_steps} steps "
            f"(n={n}, m={m}, schedule={schedule})"
        )
    return DynamicsResult(
        profile=snapshot(), converged=False, steps=steps, history=history
    )


def best_response_dynamics(
    game: UncertainRoutingGame,
    start: AssignmentLike | None = None,
    *,
    schedule: Schedule = "round_robin",
    max_steps: int = 100_000,
    tol: float = 1e-9,
    seed: RandomState = None,
    record_history: bool = False,
    raise_on_budget: bool = False,
) -> DynamicsResult:
    """Iterate single-user *best* responses until no user can improve.

    With a deterministic schedule a revisited profile is reported as a
    best-response cycle (``cycled=True``) instead of looping forever.
    """
    return _run_dynamics(
        game,
        start,
        mode="best",
        schedule=schedule,
        max_steps=max_steps,
        tol=tol,
        seed=seed,
        record_history=record_history,
        raise_on_budget=raise_on_budget,
    )



# --- seed equilibria/enumeration.py -------------------------------- #


def _blocks(total: int, block: int) -> Iterator[tuple[int, int]]:
    start = 0
    while start < total:
        yield start, min(start + block, total)
        start += block


def pure_nash_mask(
    game: UncertainRoutingGame,
    assignments: np.ndarray,
    *,
    tol: float = 1e-9,
    block_size: int = 65_536,
) -> np.ndarray:
    """Boolean mask over the rows of *assignments* that are pure NE.

    Vectorised Nash test: a row ``sigma`` is an equilibrium iff for every
    user ``i`` and link ``l``::

        loads[sigma_i] / C[i, sigma_i]  <=  (loads[l] + w_i [l != sigma_i]) / C[i, l]
    """
    sig_all = np.ascontiguousarray(assignments, dtype=np.intp)
    n, m = game.num_users, game.num_links
    if sig_all.ndim != 2 or sig_all.shape[1] != n:
        raise ModelError(f"assignments must have shape (B, {n})")
    w = game.weights
    caps = game.capacities
    t = game.initial_traffic
    out = np.empty(sig_all.shape[0], dtype=bool)

    for lo, hi in _blocks(sig_all.shape[0], block_size):
        sig = sig_all[lo:hi]
        b = sig.shape[0]
        loads = np.zeros((b, m))
        for link in range(m):
            loads[:, link] = (w[None, :] * (sig == link)).sum(axis=1)
        loads += t[None, :]
        rows = np.arange(b)[:, None]
        users = np.arange(n)[None, :]
        current = loads[rows, sig] / caps[users, sig]  # (b, n)
        # seen[b, i, l] = loads[b, l] + w_i unless l == sigma_i
        seen = loads[:, None, :] + w[None, :, None]
        seen[rows, users, sig] -= w[None, :]
        dev = seen / caps[None, :, :]
        scale = np.maximum(current, 1.0)
        out[lo:hi] = np.all(
            dev.min(axis=2) >= current - tol * scale, axis=1
        )
    return out


def count_pure_nash(game: UncertainRoutingGame, *, tol: float = 1e-9) -> int:
    """Number of pure Nash equilibria (exhaustive)."""
    assignments = enumerate_assignments(game.num_users, game.num_links)
    return int(pure_nash_mask(game, assignments, tol=tol).sum())



# --- seed analysis/conjecture.py ----------------------------------- #


def _examine_instance(game: UncertainRoutingGame, seed: int) -> tuple[int, int, bool]:
    """(number of pure NE, BRD steps, BRD converged) for one instance."""
    count = count_pure_nash(game)
    result = best_response_dynamics(
        game, schedule="round_robin", max_steps=50_000, seed=seed
    )
    return count, result.steps, result.converged


def seed_run_conjecture_campaign(
    grid: Sequence[GridCell] | None = None,
    *,
    concentration: float = 1.0,
    num_states: int = 4,
    label: str = "E5",
) -> CampaignResult:
    """Run the campaign over *grid* (default: the published E5 grid)."""
    cells = list(grid) if grid is not None else list(conjecture_grid())
    outcome = CampaignResult()
    for cell in cells:
        counts: list[int] = []
        steps: list[int] = []
        converged_all = True
        for rep in range(cell.replications):
            seed = stable_seed(label, cell.num_users, cell.num_links, rep)
            game = random_game(
                cell.num_users,
                cell.num_links,
                num_states=num_states,
                concentration=concentration,
                seed=seed,
            )
            count, brd_steps, converged = _examine_instance(game, seed)
            counts.append(count)
            steps.append(brd_steps)
            converged_all = converged_all and converged
        outcome.cells.append(
            CellResult(
                num_users=cell.num_users,
                num_links=cell.num_links,
                instances=cell.replications,
                with_pure_nash=sum(1 for c in counts if c > 0),
                min_equilibria=min(counts),
                max_equilibria=max(counts),
                mean_equilibria=sum(counts) / len(counts),
                mean_brd_steps=sum(steps) / len(steps),
                brd_always_converged=converged_all,
            )
        )
    return outcome
