"""The speedup gates' shared wall-clock helper.

One definition for every ``bench_*.py`` gate so the timing methodology
(perf_counter, one cold call per sample) cannot drift between benches —
the ``BENCH_trajectory.json`` artifact compares their numbers across
commits, which is only meaningful while they measure the same way.
"""

from __future__ import annotations

import time
from typing import Callable


def _timed(fn: Callable[[], object]) -> float:
    """Seconds one invocation of *fn* takes."""
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
