"""E10/E11 — Theorems 4.13/4.14: price-of-anarchy bound benchmarks."""

from __future__ import annotations

import pytest

from repro.analysis.poa import (
    empirical_coordination_ratios,
    poa_bound_general,
    poa_bound_uniform,
    poa_study,
)
from repro.generators.games import random_game, random_uniform_beliefs_game
from repro.generators.suites import GridCell
from repro.util.rng import stable_seed
from repro.util.tables import Table


def test_empirical_ratio_computation(benchmark):
    game = random_game(4, 2, seed=stable_seed("bench-e11", "one"))
    r1, r2 = benchmark.pedantic(
        lambda: empirical_coordination_ratios(game), rounds=2, iterations=1
    )
    assert r1 >= 1.0 - 1e-9 and r2 >= 1.0 - 1e-9


@pytest.mark.parametrize("uniform", [True, False], ids=["E10-uniform", "E11-general"])
def test_poa_study_cell(benchmark, uniform):
    grid = [GridCell(3, 2, 4)]
    obs = benchmark.pedantic(
        lambda: poa_study(grid, uniform_beliefs=uniform, label="bench-poa"),
        rounds=1,
        iterations=1,
    )
    assert all(o.bound_holds() for o in obs)


def test_e10_e11_series(benchmark, report):
    grid = [GridCell(n, m, 5) for (n, m) in [(3, 2), (4, 3), (5, 2)]]

    def run():
        uni = poa_study(grid, uniform_beliefs=True, label="bench-e10s")
        gen = poa_study(grid, uniform_beliefs=False, label="bench-e11s")
        return uni, gen

    uni, gen = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(o.bound_holds() for o in uni + gen)
    for label, obs in (("E10 (Thm 4.13, uniform)", uni), ("E11 (Thm 4.14, general)", gen)):
        table = Table(
            ["n", "m", "worst SC1/OPT1", "worst SC2/OPT2", "min bound"],
            title=f"[{label}] empirical ratio vs bound",
        )
        cells: dict = {}
        for o in obs:
            cells.setdefault((o.num_users, o.num_links), []).append(o)
        for (n, m), group in sorted(cells.items()):
            table.add_row(
                [
                    n,
                    m,
                    max(o.ratio_sc1 for o in group),
                    max(o.ratio_sc2 for o in group),
                    min(o.bound for o in group),
                ]
            )
        report.append(table.render())
