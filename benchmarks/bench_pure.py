"""Batched vs per-game pure-strategy pipeline (the lockstep gate).

Measures the Section 3 pure-strategy experiments two ways:

* ``batched`` — the E1-E4/E6 chunk kernels exactly as the campaign
  runtime drives them: each chunk's seeds stacked into one
  :class:`~repro.batch.container.GameBatch`, solved by the lockstep
  solvers of :mod:`repro.batch.pure`, graded by one batched Nash mask /
  census / potential-verify call;
* ``looped``  — the per-game pipeline exactly as it existed before the
  batched pure engine, vendored verbatim in
  ``benchmarks/pure_seed_baseline.py`` (per seed: build the game, run
  the sequential algorithm, check the profile / build the response
  graph / walk the sampled four-cycles in Python).

Both sides must agree payload for payload before any timing is trusted;
the tier-1 suite pins the same contract through the frozen fingerprints
in ``tests/data/pure_seed_baseline.json``. The >= 5x gates run at
campaign-representative widths; a second gate covers lockstep
nashification, the headline kernel of the batched pure engine.
"""

from __future__ import annotations

import numpy as np
import pytest
from _timing import _timed
import pure_seed_baseline as seed

from repro.batch.container import GameBatch
from repro.batch.pure import batch_nashify_common_beliefs, batch_response_cycle_census
from repro.experiments.algorithms import (
    _examine_e1_chunk,
    _examine_e2_chunk,
    _examine_e3_chunk,
    _examine_e4_chunk,
)
from repro.experiments.campaign import (
    _examine_e6_gap_chunk,
    _examine_e6_kp_chunk,
    _examine_e6_sym_chunk,
)
from repro.generators.suites import GridCell
from repro.util.parallel import ReplicationChunk
from repro.util.rng import as_generator, stable_seed

LABEL = "bench-pure"

#: (label, cells, batched kernel, vendored seed kernel) — campaign-
#: representative widths for every rewired experiment.
PIPELINE = [
    ("E1", [GridCell(8, 2, 20), GridCell(21, 2, 12)],
     _examine_e1_chunk, seed.seed_examine_e1_chunk),
    ("E2", [GridCell(8, 4, 12)],
     _examine_e2_chunk, seed.seed_examine_e2_chunk),
    ("E3", [GridCell(16, 4, 12), GridCell(64, 8, 12)],
     _examine_e3_chunk, seed.seed_examine_e3_chunk),
    ("E4", [GridCell(3, m, 25) for m in (2, 3, 4)],
     _examine_e4_chunk, seed.seed_examine_e4_chunk),
    ("E6-gap", [GridCell(3, 3, 8)],
     _examine_e6_gap_chunk, seed.seed_examine_e6_gap_chunk),
    ("E6-kp", [GridCell(4, 3, 15)],
     _examine_e6_kp_chunk, seed.seed_examine_e6_kp_chunk),
    ("E6-sym", [GridCell(4, 3, 15)],
     _examine_e6_sym_chunk, seed.seed_examine_e6_sym_chunk),
]


def _chunks(label, cells):
    return [
        ReplicationChunk(
            label=f"{LABEL}-{label}",
            num_users=cell.num_users,
            num_links=cell.num_links,
            rep_lo=0,
            rep_hi=cell.replications,
        )
        for cell in cells
    ]


def batched_pipeline():
    """Every experiment's chunks through the whole-stack batch kernels."""
    return [
        [kernel(chunk) for chunk in _chunks(label, cells)]
        for label, cells, kernel, _ in PIPELINE
    ]


def looped_pipeline():
    """The same chunks through the vendored pre-batch per-game loops."""
    return [
        [kernel(chunk) for chunk in _chunks(label, cells)]
        for label, cells, _, kernel in PIPELINE
    ]


def test_pure_pipeline_speedup_at_least_5x(report, trajectory):
    """Acceptance gate: batched E1-E4/E6 kernels >= 5x the seed loops."""
    # The vendored per-game pipeline must agree with the batched kernels
    # payload for payload, otherwise the timing comparison is
    # meaningless (the frozen baseline pins the same contract bit for
    # bit on the real campaign grids).
    assert batched_pipeline() == looped_pipeline()

    batched_times = [_timed(batched_pipeline) for _ in range(5)]
    looped_times = [_timed(looped_pipeline) for _ in range(3)]
    batched, looped = min(batched_times), min(looped_times)
    ratio = looped / batched
    report.append(
        f"[pure] E1-E4/E6 chunk kernels at campaign widths: batched "
        f"{batched * 1e3:.2f} ms, seed per-game loop {looped * 1e3:.2f} ms, "
        f"speedup {ratio:.1f}x"
    )
    trajectory.record("pure-pipeline", batched_times, looped_times)
    assert ratio >= 5.0, f"batched pure pipeline only {ratio:.2f}x faster"


NASHIFY_B, NASHIFY_N, NASHIFY_M = 64, 8, 4
NASHIFY_SEEDS = [stable_seed(LABEL, "nashify", i) for i in range(NASHIFY_B)]


def _nashify_inputs():
    batch = GameBatch.from_seeds_kp(NASHIFY_SEEDS, NASHIFY_N, NASHIFY_M)
    starts = as_generator(stable_seed(LABEL, "starts")).integers(
        0, NASHIFY_M, size=(NASHIFY_B, NASHIFY_N)
    )
    return batch, starts


def batched_nashify(batch, starts):
    return batch_nashify_common_beliefs(batch, starts)


def looped_nashify(starts):
    from repro.generators.games import random_kp_game

    return [
        seed.seed_nashify_common_beliefs(
            random_kp_game(NASHIFY_N, NASHIFY_M, seed=s), starts[i]
        )
        for i, s in enumerate(NASHIFY_SEEDS)
    ]


def test_nashify_speedup_at_least_5x(report, trajectory):
    """Acceptance gate: lockstep nashification >= 5x the seed loop."""
    batch, starts = _nashify_inputs()
    result = batched_nashify(batch, starts)
    reference = looped_nashify(starts)
    for i, ref in enumerate(reference):
        assert np.array_equal(result.profiles[i], ref["links"])
        assert result.steps[i] == ref["steps"]
        assert result.sc1_after[i] == ref["sc1_after"]
        assert result.sc2_after[i] == ref["sc2_after"]
        assert result.max_congestion_after[i] == ref["max_congestion_after"]
    assert result.preserved_max_congestion.all()

    batched_times = [
        _timed(lambda: batched_nashify(batch, starts)) for _ in range(5)
    ]
    looped_times = [_timed(lambda: looped_nashify(starts)) for _ in range(3)]
    batched, looped = min(batched_times), min(looped_times)
    ratio = looped / batched
    report.append(
        f"[pure] lockstep nashification (B={NASHIFY_B}, n={NASHIFY_N}, "
        f"m={NASHIFY_M}): batched {batched * 1e3:.2f} ms, seed loop "
        f"{looped * 1e3:.2f} ms, speedup {ratio:.1f}x"
    )
    trajectory.record("pure-nashify", batched_times, looped_times)
    assert ratio >= 5.0, f"lockstep nashification only {ratio:.2f}x faster"


def test_batched_pipeline(benchmark):
    results = benchmark(batched_pipeline)
    assert len(results) == len(PIPELINE)


def test_looped_pipeline(benchmark):
    results = benchmark(looped_pipeline)
    assert len(results) == len(PIPELINE)


def test_batched_nashify_kernel(benchmark):
    batch, starts = _nashify_inputs()
    result = benchmark(lambda: batched_nashify(batch, starts))
    assert len(result) == NASHIFY_B


@pytest.mark.parametrize("batch_size", [16, 64, 256])
def test_census_widths(benchmark, batch_size):
    """Stacked census throughput per stack width (n=3, m=3)."""
    seeds = [stable_seed("bench-pure-census", i) for i in range(batch_size)]
    batch = GameBatch.from_seeds(seeds, 3, 3)
    verdicts = benchmark(lambda: batch_response_cycle_census(batch, kind="best"))
    assert verdicts.shape == (batch_size,)
