"""E9 — Lemma 4.9 / Theorems 4.11-4.12: FMNE dominance benchmarks."""

from __future__ import annotations

import pytest

from repro.analysis.worst_case import verify_fmne_dominance
from repro.generators.games import random_game
from repro.util.rng import stable_seed


@pytest.mark.parametrize("n,m", [(2, 2), (3, 2), (3, 3)])
def test_dominance_verification(benchmark, n, m):
    game = random_game(n, m, seed=stable_seed("bench-e9", n, m))
    report = benchmark.pedantic(
        lambda: verify_fmne_dominance(game), rounds=2, iterations=1
    )
    assert report.holds


def test_e9_series(benchmark, report):
    def run():
        eqs = violations = 0
        for rep in range(8):
            game = random_game(3, 2, seed=stable_seed("bench-e9s", rep))
            result = verify_fmne_dominance(game)
            eqs += len(result.equilibria)
            violations += len(result.violations)
        return eqs, violations
    eqs, violations = benchmark.pedantic(run, rounds=1, iterations=1)
    assert violations == 0
    report.append(
        f"[E9] dominance: {eqs} equilibria across 8 instances, "
        f"{violations} per-user dominance violations"
    )
