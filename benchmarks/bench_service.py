"""Dynamic batching vs the sequential ``B = 1`` query path.

Measures a 64-way concurrent burst of distinct mixed-shape queries two
ways:

* ``batched``    — the service's :class:`DynamicBatcher` (no cache, so
  every sample pays full solve cost): the whole burst coalesces into
  one window, :func:`solve_requests` stacks it into per-shape
  :class:`GameBatch` sub-batches, and each shape costs one kernel pass;
* ``sequential`` — the pre-service shape: one :func:`solve_requests`
  call per query, i.e. one full kernel pass each (the exact ``B = 1``
  path a caller without the service would loop over).

Both sides must return identical response objects before any timing is
trusted — the service's bit-parity contract, asserted here on the very
workload being timed. The >= 3x gate is the tentpole's acceptance
criterion at the 64-way concurrent load; sustained throughput and
per-request latency percentiles ride along in the report line and the
``BENCH_trajectory.json`` artifact.
"""

from __future__ import annotations

import asyncio

from _timing import _timed

from repro.batch.container import GameBatch
from repro.service import DynamicBatcher, EquilibriumRequest, solve_requests
from repro.util.rng import stable_seed

LABEL = "bench-service"
SHAPES = [(3, 3), (4, 3), (3, 4), (2, 4)]
LOAD = 64


def _requests(count: int = LOAD) -> list[EquilibriumRequest]:
    """*count* distinct queries cycling through the mixed shapes."""
    requests = []
    for index in range(count):
        n, m = SHAPES[index % len(SHAPES)]
        seed = stable_seed(LABEL, n, m, index)
        batch = GameBatch.from_seeds([seed], n, m)
        requests.append(
            EquilibriumRequest.from_arrays(
                batch.weights[0], batch.capacities[0], batch.initial_traffic[0]
            )
        )
    return requests


def sequential_pass(requests):
    """One kernel pass per query — the pre-service calling shape."""
    return [solve_requests([request])[0] for request in requests]


async def _batched_burst(requests):
    """One concurrent burst through a fresh (uncached) batcher.

    Returns the responses in request order plus each request's
    submit-to-result latency as the service's clients observe it.
    """
    batcher = DynamicBatcher(max_batch=len(requests), max_delay_ms=50.0)
    loop = asyncio.get_running_loop()

    async def timed_submit(request):
        start = loop.time()
        response = await batcher.submit(request)
        return response, loop.time() - start

    pairs = await asyncio.gather(
        *(timed_submit(request) for request in requests)
    )
    await batcher.close()
    return [response for response, _ in pairs], [lat for _, lat in pairs]


def batched_pass(requests):
    return asyncio.run(_batched_burst(requests))


def _percentile(sorted_values, fraction):
    index = min(len(sorted_values) - 1, int(len(sorted_values) * fraction))
    return sorted_values[index]


def test_service_speedup_at_least_3x(report, trajectory):
    """Acceptance gate: batched throughput >= 3x sequential at 64-way
    concurrent load, on bit-identical answers."""
    requests = _requests()
    sequential_results = sequential_pass(requests)
    batched_results, _ = batched_pass(requests)
    assert batched_results == sequential_results

    batched_times = []
    latencies = []
    for _ in range(5):
        sample = {}
        batched_times.append(
            _timed(lambda: sample.setdefault("out", batched_pass(requests)))
        )
        latencies.extend(sample["out"][1])
    sequential_times = [
        _timed(lambda: sequential_pass(requests)) for _ in range(3)
    ]
    trajectory.record(
        "service-dynamic-batching", batched_times, sequential_times
    )
    batched, sequential = min(batched_times), min(sequential_times)
    ratio = sequential / batched
    latencies.sort()
    report.append(
        f"[service] {LOAD}-way concurrent burst over shapes {SHAPES}: "
        f"batched {batched * 1e3:.2f} ms/burst "
        f"({LOAD / batched:.0f} qps, request latency "
        f"p50 {_percentile(latencies, 0.50) * 1e3:.2f} ms, "
        f"p99 {_percentile(latencies, 0.99) * 1e3:.2f} ms), "
        f"sequential B=1 {sequential * 1e3:.2f} ms, speedup {ratio:.1f}x"
    )
    assert ratio >= 3.0, f"dynamic batching only {ratio:.2f}x faster"


def test_batched_burst(benchmark):
    requests = _requests(32)
    results = benchmark(lambda: batched_pass(requests)[0])
    assert len(results) == 32


def test_sequential_burst(benchmark):
    requests = _requests(32)
    results = benchmark(lambda: sequential_pass(requests))
    assert len(results) == 32
