"""Batched vs per-instance campaign throughput (the batch-engine gate).

Measures the E5 quick grid two ways:

* ``batched``  — :func:`run_conjecture_campaign` on the batch engine
  (stacked ``GameBatch`` per cell, GEMM Nash sweep, lockstep dynamics);
* ``looped``   — the campaign exactly as it existed before the batch
  engine, vendored verbatim from the seed commit in
  ``benchmarks/seed_baseline.py`` (its real call graph: per-step
  profile validation, ``PureProfile`` snapshots, dict cycle
  bookkeeping). It is deliberately not the current single-game APIs —
  those now share the accelerated kernels, so using them would fold
  this PR's own single-game speedups into the baseline and understate
  the batching gain.

Both produce bit-identical statistics. The >= 5x gate runs the quick
grid's (n, m) cells at the campaign's standard replication width
(40 per cell, as the published full E5 grid uses): at the smoke width
of 8 the wall time is a few milliseconds and dominated by the
parity-locked per-instance RNG constructions both paths must pay, so
the smoke-width ratio (~4x, reported for transparency) measures the
RNG floor rather than the engine. The standalone kernel benchmarks
record how the sweep scales with batch width.
"""

from __future__ import annotations

import pytest
from _timing import _timed
from seed_baseline import seed_run_conjecture_campaign

from repro.analysis.conjecture import run_conjecture_campaign
from repro.batch import (
    GameBatch,
    batch_best_response_dynamics,
    batch_count_pure_nash,
    random_game_batch,
)
from repro.generators.suites import GridCell, quick_conjecture_grid
from repro.util.rng import stable_seed

QUICK_GRID = list(quick_conjecture_grid())
GATE_GRID = [
    GridCell(c.num_users, c.num_links, 40) for c in quick_conjecture_grid()
]
LABEL = "bench-batch"


def _cells_key(result):
    return [
        (
            c.with_pure_nash, c.min_equilibria, c.max_equilibria,
            c.mean_equilibria, c.mean_brd_steps, c.brd_always_converged,
        )
        for c in result.cells
    ]


def test_campaign_batched(benchmark):
    campaign = benchmark(lambda: run_conjecture_campaign(QUICK_GRID, label=LABEL))
    assert campaign.conjecture_supported


def test_campaign_looped(benchmark):
    campaign = benchmark(lambda: seed_run_conjecture_campaign(QUICK_GRID, label=LABEL))
    assert campaign.conjecture_supported


def test_campaign_speedup_at_least_5x(report, trajectory):
    """Acceptance gate: batched quick-grid campaign >= 5x the seed loop."""
    # The vendored seed implementation must agree with the batched
    # engine bit for bit, otherwise the timing comparison is meaningless.
    batched_result = run_conjecture_campaign(GATE_GRID, label=LABEL)
    seed_result = seed_run_conjecture_campaign(GATE_GRID, label=LABEL)
    assert _cells_key(batched_result) == _cells_key(seed_result)

    batched_times = [
        _timed(lambda: run_conjecture_campaign(GATE_GRID, label=LABEL))
        for _ in range(10)
    ]
    looped_times = [
        _timed(lambda: seed_run_conjecture_campaign(GATE_GRID, label=LABEL))
        for _ in range(4)
    ]
    trajectory.record("conjecture-campaign", batched_times, looped_times)
    batched, looped = min(batched_times), min(looped_times)
    ratio = looped / batched
    smoke_b = min(
        _timed(lambda: run_conjecture_campaign(QUICK_GRID, label=LABEL))
        for _ in range(10)
    )
    smoke_l = min(
        _timed(lambda: seed_run_conjecture_campaign(QUICK_GRID, label=LABEL))
        for _ in range(4)
    )
    report.append(
        f"[batch] E5 quick cells x40: batched {batched * 1e3:.2f} ms, "
        f"seed loop {looped * 1e3:.2f} ms, speedup {ratio:.1f}x "
        f"(smoke width x8: {smoke_b * 1e3:.2f} vs {smoke_l * 1e3:.2f} ms, "
        f"{smoke_l / smoke_b:.1f}x)"
    )
    assert ratio >= 5.0, f"batched campaign only {ratio:.2f}x faster"


@pytest.mark.parametrize("batch_size", [8, 64, 512])
def test_batch_nash_sweep(benchmark, batch_size):
    """Nash-count sweep cost per stack width (n=4, m=3: 81 profiles)."""
    batch = random_game_batch(batch_size, 4, 3, seed=7)
    counts = benchmark(lambda: batch_count_pure_nash(batch))
    assert counts.shape == (batch_size,)


@pytest.mark.parametrize("batch_size", [64, 512])
def test_batch_lockstep_dynamics(benchmark, batch_size):
    """Lockstep best-response dynamics over a wide stack."""
    batch = random_game_batch(batch_size, 6, 3, seed=8)
    result = benchmark(
        lambda: batch_best_response_dynamics(batch, seed=0, max_steps=10_000)
    )
    assert result.all_converged


def test_from_seeds_generation(benchmark):
    """Seed-parity generation throughput (1000 instances)."""
    seeds = [stable_seed("bench-gen", i) for i in range(1000)]
    batch = benchmark(lambda: GameBatch.from_seeds(seeds, 4, 3))
    assert len(batch) == 1000


def test_one_pass_generation(benchmark):
    """Vectorised one-pass generation throughput (10k instances)."""
    batch = benchmark(lambda: random_game_batch(10_000, 4, 3, seed=9))
    assert len(batch) == 10_000
