"""E3 — Figure 3 / Theorem 3.6: ``Auniform`` benchmark."""

from __future__ import annotations

import pytest

from repro.equilibria.conditions import is_pure_nash
from repro.equilibria.uniform import auniform
from repro.generators.games import random_uniform_beliefs_game
from repro.util.rng import stable_seed


@pytest.mark.parametrize("n", [64, 512, 4096, 16384])
def test_auniform_scaling(benchmark, n):
    game = random_uniform_beliefs_game(
        n, 8, with_initial_traffic=True, seed=stable_seed("bench-e3", n)
    )
    profile = benchmark(lambda: auniform(game))
    assert is_pure_nash(game, profile)


def test_e3_correctness_series(benchmark, report):
    def run():
        ok = 0
        for n, m in ((4, 2), (32, 5), (256, 8), (1024, 16)):
            game = random_uniform_beliefs_game(
                n, m, with_initial_traffic=True, seed=stable_seed("bench-e3s", n, m)
            )
            if is_pure_nash(game, auniform(game)):
                ok += 1
        return ok
    ok = benchmark.pedantic(run, rounds=3, iterations=1)
    assert ok == 4
    report.append("[E3] Auniform: 4/4 (n, m) cells returned verified pure NE")
