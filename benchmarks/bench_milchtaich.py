"""E12 — the Milchtaich separation benchmarks."""

from __future__ import annotations

import pytest

from repro.substrates.milchtaich import (
    canonical_counterexample,
    multiplicative_pne_sweep,
)


def test_witness_verification(benchmark):
    """Exhaustive 27-profile verification of the stored no-PNE witness."""
    game = canonical_counterexample().game
    exists = benchmark(lambda: game.exists_pure_nash())
    assert not exists


def test_multiplicative_sweep(benchmark, report):
    hits = benchmark.pedantic(
        lambda: multiplicative_pne_sweep(num_instances=100, seed=7),
        rounds=1,
        iterations=1,
    )
    assert hits == 100
    report.append(
        "[E12] separation: stored player-specific witness has no pure NE; "
        "100/100 multiplicative (our-model) instances have one"
    )
