#!/usr/bin/env python3
"""Check that relative markdown links in the docs resolve.

Scans README.md and every ``docs/*.md`` for inline links
(``[text](target)``), skips external schemes and pure in-page anchors,
strips ``#fragment`` suffixes from file targets, and verifies the
referenced path exists relative to the file containing the link. For a
``path#anchor`` link into a markdown file, the anchor is also checked
against the target's headings (GitHub slug rules, simplified). Exits
non-zero listing every broken link — CI's docs job gates on it.

Usage: ``python tools/check_docs.py`` (from the repository root).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def heading_anchors(markdown: Path) -> set[str]:
    """GitHub-style slugs for every heading in *markdown*."""
    anchors: set[str] = set()
    in_fence = False
    for line in markdown.read_text(encoding="utf-8").splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence or not line.startswith("#"):
            continue
        title = line.lstrip("#").strip()
        slug = re.sub(r"[^\w\- ]", "", title.lower()).replace(" ", "-")
        anchors.add(slug)
    return anchors


def check_file(path: Path) -> list[str]:
    problems: list[str] = []
    for match in LINK.finditer(path.read_text(encoding="utf-8")):
        target = match.group(1)
        if target.startswith(SKIP_SCHEMES):
            continue
        if target.startswith("#"):
            if target[1:] not in heading_anchors(path):
                problems.append(f"{path}: broken anchor {target!r}")
            continue
        file_part, _, fragment = target.partition("#")
        resolved = (path.parent / file_part).resolve()
        if not resolved.exists():
            problems.append(f"{path}: broken link {target!r}")
            continue
        if fragment and resolved.suffix == ".md":
            if fragment not in heading_anchors(resolved):
                problems.append(
                    f"{path}: broken anchor {target!r} "
                    f"(no such heading in {file_part})"
                )
    return problems


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    files = [root / "README.md", *sorted((root / "docs").glob("*.md"))]
    problems: list[str] = []
    checked = 0
    for path in files:
        if not path.exists():
            problems.append(f"missing expected file: {path}")
            continue
        checked += 1
        problems.extend(check_file(path))
    for problem in problems:
        print(problem, file=sys.stderr)
    print(f"checked {checked} file(s): "
          f"{'OK' if not problems else f'{len(problems)} broken link(s)'}")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
