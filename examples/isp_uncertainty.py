#!/usr/bin/env python
"""ISP scenario: what does bad information cost a selfish user?

The paper motivates belief-based capacity uncertainty with networks whose
links are "complex paths created by routers, constructed differently on
separate occasions according to the presence of congestion or link
failures". This example builds such a network — three links, three
congestion regimes — and measures how a user's *information quality*
affects the latency it experiences at equilibrium.

We compare, over many random draws of the true state:

* an **informed** user whose belief matches the regime frequencies;
* a **stale** user who believes yesterday's (wrong) regime;
* an **agnostic** user with the uniform belief.

Each shares the network with the same background population. We solve the
subjective game and report the *objective* latency (under the true state
distribution) of each user type at its chosen link.

Run:  python examples/isp_uncertainty.py
"""

import numpy as np

from repro import BeliefProfile, StateSpace, UncertainRoutingGame, solve_pure_nash
from repro.model.beliefs import Belief
from repro.util.tables import Table

# Three regimes: calm, evening peak, link-2 failure.
REGIMES = StateSpace(
    [
        [10.0, 8.0, 6.0],  # calm
        [4.0, 5.0, 6.0],   # evening peak: links 0/1 congested
        [10.0, 8.0, 0.5],  # failover: link 2 nearly dead
    ],
    names=("calm", "peak", "failover"),
)
TRUE_FREQUENCIES = np.array([0.5, 0.35, 0.15])


def objective_latency(game: UncertainRoutingGame, sigma, user: int) -> float:
    """Expected latency of *user* under the TRUE regime frequencies."""
    from repro.model.profiles import loads_of

    link = int(sigma.links[user])
    loads = loads_of(sigma.links, game.weights, game.num_links)
    inv = TRUE_FREQUENCIES @ (1.0 / REGIMES.capacities[:, link])
    return float(loads[link] * inv)


def build_game(focal_belief: Belief, rng: np.random.Generator) -> UncertainRoutingGame:
    """Focal user plus five background users with noisy-but-decent beliefs."""
    rows = [focal_belief.probabilities]
    for _ in range(5):
        noise = rng.dirichlet(TRUE_FREQUENCIES * 25.0)
        rows.append(noise)
    beliefs = BeliefProfile.from_matrix(REGIMES, np.array(rows))
    weights = np.concatenate([[1.0], rng.uniform(0.5, 2.0, size=5)])
    return UncertainRoutingGame(weights, beliefs)


def main() -> None:
    rng = np.random.default_rng(2006)
    informed = Belief(TRUE_FREQUENCIES)
    stale = Belief([0.05, 0.05, 0.9])     # convinced the failover persists
    agnostic = Belief([1 / 3, 1 / 3, 1 / 3])

    totals = {"informed": 0.0, "stale": 0.0, "agnostic": 0.0}
    rounds = 200
    for _ in range(rounds):
        round_seed = int(rng.integers(2**62))
        for label, belief in (
            ("informed", informed), ("stale", stale), ("agnostic", agnostic)
        ):
            # Same background population per round: only the focal belief
            # differs, so the comparison isolates information quality.
            game = build_game(belief, np.random.default_rng(round_seed))
            profile, _ = solve_pure_nash(game, seed=0)
            totals[label] += objective_latency(game, profile, user=0)

    table = Table(
        ["user type", "mean objective latency"],
        title=f"Information quality vs experienced latency ({rounds} rounds)",
    )
    for label in ("informed", "agnostic", "stale"):
        table.add_row([label, totals[label] / rounds])
    print(table.render())
    print(
        "\nThe informed user routes against the regimes that actually "
        "occur; the stale user systematically avoids a healthy link. "
        "Information quality is worth real latency in this model."
    )


if __name__ == "__main__":
    main()
