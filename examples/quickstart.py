#!/usr/bin/env python
"""Quickstart: build an uncertain routing game, solve it, analyse it.

The scenario: two parallel links whose capacities depend on which of two
network states holds ("fast-right" vs "fast-left"), and three users with
different information about which state is likely.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    BeliefProfile,
    StateSpace,
    UncertainRoutingGame,
    coordination_ratios,
    fully_mixed_candidate,
    is_pure_nash,
    poa_bound_general,
    sc1,
    sc2,
    solve_pure_nash,
)
from repro.model.latency import pure_latencies


def main() -> None:
    # 1. The network: two states over two links.
    states = StateSpace(
        [[4.0, 1.0], [1.0, 4.0]], names=("fast-left", "fast-right")
    )

    # 2. Beliefs: user 0 trusts "fast-left", user 2 trusts "fast-right",
    #    user 1 is agnostic. Row i is user i's distribution over states.
    beliefs = BeliefProfile.from_matrix(
        states,
        [
            [0.9, 0.1],
            [0.5, 0.5],
            [0.1, 0.9],
        ],
    )

    # 3. The game: traffic weights + beliefs.
    game = UncertainRoutingGame([2.0, 1.0, 1.0], beliefs)
    print(game)
    print("effective capacities C[i,l] (belief-harmonic):")
    print(np.array_str(game.capacities, precision=3))

    # 4. A pure Nash equilibrium (the dispatcher picks Atwolinks for m=2).
    profile, method = solve_pure_nash(game)
    print(f"\npure NE via {method}: {profile.as_tuple()}")
    print("verified:", is_pure_nash(game, profile))
    print("per-user subjective latencies:",
          np.array_str(pure_latencies(game, profile), precision=3))

    # 5. Social costs and the price of anarchy at this equilibrium.
    print(f"\nSC1 (sum) = {sc1(game, profile):.4f}")
    print(f"SC2 (max) = {sc2(game, profile):.4f}")
    r1, r2 = coordination_ratios(game, profile)
    print(f"coordination ratios: SC1/OPT1 = {r1:.4f}, SC2/OPT2 = {r2:.4f}")
    print(f"Theorem 4.14 upper bound: {poa_bound_general(game):.4f}")

    # 6. The fully mixed Nash equilibrium (Theorem 4.6 closed form).
    cand = fully_mixed_candidate(game)
    if cand.exists:
        print("\nfully mixed NE probabilities:")
        print(np.array_str(cand.probabilities, precision=3))
        print("fully mixed latencies:",
              np.array_str(cand.latencies, precision=3))
    else:
        print("\nno fully mixed NE for this instance "
              "(closed form leaves (0,1)); its latencies still upper-bound "
              "every equilibrium (Corollary 4.10):",
              np.array_str(cand.latencies, precision=3))


if __name__ == "__main__":
    main()
