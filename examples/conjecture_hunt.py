#!/usr/bin/env python
"""Hunt for a counterexample to Conjecture 3.7 (you won't find one).

Section 3.2 of the paper reports that simulations over numerous small
instances never produced a game without a pure Nash equilibrium, which
motivates Conjecture 3.7. This example re-runs that campaign on a small
grid — every instance is checked *exhaustively*, so a "0" anywhere in the
"PNE found" column would be an actual counterexample (please publish it).

It also demonstrates the contrast that makes the conjecture interesting:
the superclass of player-specific games *does* contain no-PNE instances
(the library ships a verified 3-player witness).

Run:  python examples/conjecture_hunt.py
"""

from repro import run_conjecture_campaign
from repro.generators.suites import GridCell
from repro.substrates.milchtaich import canonical_counterexample


def main() -> None:
    grid = [
        GridCell(2, 2, 30),
        GridCell(3, 3, 30),
        GridCell(4, 3, 30),
        GridCell(5, 2, 30),
        GridCell(6, 3, 20),
    ]
    campaign = run_conjecture_campaign(grid, label="example-hunt")
    print(campaign.to_table().render())
    print(
        f"\ninstances checked exhaustively: {campaign.total_instances}, "
        f"counterexamples: {campaign.counterexamples}"
    )
    print("Conjecture 3.7 supported:", campaign.conjecture_supported)

    print(
        "\nFor contrast — the player-specific superclass is NOT so lucky:"
    )
    witness = canonical_counterexample()
    print(
        "  stored 3-player witness (weights (1,2,3), 3 links) has no pure "
        f"NE: {witness.verify()}"
    )
    print(
        "  its best-response dynamics cycle forever; the paper's model "
        "provably escapes this for n=3 (Section 3.1)."
    )


if __name__ == "__main__":
    main()
