#!/usr/bin/env python
"""Worst-case equilibria: the fully mixed point maximises social cost.

This example makes Section 4 concrete on one instance:

1. enumerate *all* Nash equilibria of a small game (support enumeration);
2. compute the fully mixed NE in closed form (Theorem 4.6);
3. show per-user dominance (Lemma 4.9) and SC1/SC2 maximality
   (Theorems 4.11/4.12);
4. compare the worst equilibrium's coordination ratio against the
   Theorem 4.14 upper bound.

Run:  python examples/worst_case_anarchy.py
"""

import numpy as np

from repro import (
    UncertainRoutingGame,
    enumerate_mixed_nash,
    fully_mixed_candidate,
    opt1,
    opt2,
    poa_bound_general,
    sc1,
    sc2,
    verify_fmne_dominance,
)
from repro.util.tables import Table


def main() -> None:
    # A 3-user, 2-link game with genuinely conflicting beliefs.
    caps = np.array(
        [
            [3.0, 1.0],
            [1.0, 3.0],
            [2.0, 2.0],
        ]
    )
    game = UncertainRoutingGame.from_capacities([1.0, 1.0, 2.0], caps)
    print(game)

    equilibria = enumerate_mixed_nash(game)
    cand = fully_mixed_candidate(game)
    print(f"\nequilibria found by support enumeration: {len(equilibria)}")
    print(f"fully mixed NE exists: {cand.exists}")

    table = Table(
        ["#", "kind", "SC1", "SC2"],
        title="All Nash equilibria vs the fully mixed reference",
    )
    for idx, eq in enumerate(equilibria):
        kind = "pure" if eq.is_pure(atol=1e-9) else (
            "fully mixed" if eq.is_fully_mixed(atol=1e-9) else "mixed"
        )
        table.add_row([idx, kind, sc1(game, eq), sc2(game, eq)])
    table.add_row(
        ["F", "fully mixed reference (Lemma 4.1)",
         float(cand.latencies.sum()), float(cand.latencies.max())]
    )
    print("\n" + table.render())

    report = verify_fmne_dominance(game)
    print(f"\nLemma 4.9 per-user dominance holds: {report.holds}")

    worst_sc1 = max(sc1(game, eq) for eq in equilibria)
    worst_sc2 = max(sc2(game, eq) for eq in equilibria)
    print(f"\nOPT1 = {opt1(game):.4f}, OPT2 = {opt2(game):.4f}")
    print(f"worst equilibrium ratios: "
          f"SC1/OPT1 = {worst_sc1 / opt1(game):.4f}, "
          f"SC2/OPT2 = {worst_sc2 / opt2(game):.4f}")
    print(f"Theorem 4.14 bound: {poa_bound_general(game):.4f}")


if __name__ == "__main__":
    main()
