#!/usr/bin/env python
"""KP-model vs uncertainty: how beliefs reshape equilibria.

The uncertain-routing game strictly generalises the KP-model: point-mass
common beliefs recover it exactly. This example takes one physical
network and sweeps the *confidence* of users' beliefs from fully informed
(KP) to fully uncertain, tracking:

* which equilibrium the dispatcher finds;
* its subjective social costs SC1/SC2;
* the classic objective expected-max-congestion of the same assignment
  (computable because the physical network is fixed).

Run:  python examples/kp_vs_uncertain.py
"""

import numpy as np

from repro import (
    BeliefProfile,
    StateSpace,
    UncertainRoutingGame,
    sc1,
    sc2,
    solve_pure_nash,
)
from repro.model.profiles import loads_of
from repro.util.tables import Table

TRUE_STATE = 0  # the state that actually holds


def objective_max_congestion(game, sigma, states: StateSpace) -> float:
    loads = loads_of(sigma.links, game.weights, game.num_links)
    return float((loads / states.capacities[TRUE_STATE]).max())


def main() -> None:
    states = StateSpace(
        [
            [6.0, 3.0, 1.0],   # truth: link 0 fastest
            [1.0, 3.0, 6.0],   # mirage: link 2 fastest
        ],
        names=("truth", "mirage"),
    )
    weights = np.array([3.0, 2.0, 2.0, 1.0, 1.0])
    n = weights.size

    table = Table(
        ["P(truth)", "method", "equilibrium", "SC1", "SC2",
         "objective max congestion"],
        title="Belief confidence sweep: informed -> misled",
    )
    for p_truth in (1.0, 0.9, 0.7, 0.5, 0.3, 0.1, 0.0):
        belief_matrix = np.tile([p_truth, 1.0 - p_truth], (n, 1))
        beliefs = BeliefProfile.from_matrix(states, belief_matrix)
        game = UncertainRoutingGame(weights, beliefs)
        profile, method = solve_pure_nash(game, seed=0)
        table.add_row(
            [
                p_truth,
                method,
                str(profile.as_tuple()),
                sc1(game, profile),
                sc2(game, profile),
                objective_max_congestion(game, profile, states),
            ]
        )
    print(table.render())
    print(
        "\nAt P(truth)=1 the game IS the KP-model and users exploit the "
        "fast link; as belief mass shifts to the mirage state the "
        "subjective equilibrium migrates toward the slow link and the "
        "objective congestion of the induced assignment degrades."
    )


if __name__ == "__main__":
    main()
