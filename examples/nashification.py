#!/usr/bin/env python
"""Nashification: repairing arbitrary routings into equilibria.

Feldmann et al. (cited as [4] in the paper) showed that in the KP-model
any profile can be turned into a pure Nash equilibrium without increasing
the maximum congestion. This example demonstrates:

1. the guarantee holding on complete-information (common-beliefs) games;
2. what survives under belief uncertainty — the library's general
   `nashify` still reaches an equilibrium, but the objective congestion
   guarantee can fail because users repair *subjective* grievances.

Run:  python examples/nashification.py
"""

import numpy as np

from repro.equilibria.nashify import nashify, nashify_common_beliefs
from repro.generators.games import random_game, random_kp_game
from repro.util.rng import as_generator
from repro.util.tables import Table


def main() -> None:
    rng = as_generator(7)

    table = Table(
        ["instance", "steps", "max congestion before", "after", "preserved"],
        title="Common beliefs (KP): nashify never worsens max congestion",
    )
    for rep in range(6):
        game = random_kp_game(8, 3, seed=rep)
        start = rng.integers(0, 3, size=8)
        result = nashify_common_beliefs(game, start)
        table.add_row(
            [
                f"kp-{rep}",
                result.steps,
                result.max_congestion_before,
                result.max_congestion_after,
                "yes" if result.preserved_max_congestion else "NO",
            ]
        )
    print(table.render())

    table2 = Table(
        ["instance", "steps", "SC1 before", "SC1 after", "mean-cap congestion "
         "before", "after"],
        title="\nDistinct beliefs: equilibrium reached, guarantee not a theorem",
    )
    for rep in range(6):
        game = random_game(8, 3, seed=100 + rep)
        start = rng.integers(0, 3, size=8)
        result = nashify(game, start)
        table2.add_row(
            [
                f"unc-{rep}",
                result.steps,
                result.sc1_before,
                result.sc1_after,
                result.max_congestion_before,
                result.max_congestion_after,
            ]
        )
    print(table2.render())
    print(
        "\nUnder uncertainty users repair subjective regret; the observer's "
        "congestion usually improves too, but nothing forces it to — the "
        "price of private information extends to repair dynamics."
    )


if __name__ == "__main__":
    main()
