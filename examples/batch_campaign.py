"""A 10,000-instance pure-NE sweep on the batched game engine.

The paper's Section 3.2 campaign ran "numerous instances"; the batched
engine makes *numerous* cheap. This example draws 10k random games per
(n, m) cell in one vectorised RNG pass, decides pure-NE existence for
every instance with the GEMM Nash sweep, and drives all instances'
best-response dynamics in lockstep — no per-instance Python loop
anywhere.

Run:  PYTHONPATH=src python examples/batch_campaign.py [instances]
"""

from __future__ import annotations

import sys
import time

from repro.batch import (
    batch_best_response_dynamics,
    batch_count_pure_nash,
    random_game_batch,
)
from repro.util.rng import stable_seed
from repro.util.tables import Table


def main(instances: int = 10_000) -> None:
    cells = [(3, 2), (3, 3), (4, 2), (4, 3), (5, 3)]
    table = Table(
        ["n", "m", "instances", "PNE found", "max#NE", "mean BRD steps",
         "all converged", "sec"],
        title=f"Batched conjecture sweep — {instances} instances per cell",
    )
    total = 0
    counterexamples = 0
    for n, m in cells:
        start = time.perf_counter()
        batch = random_game_batch(instances, n, m, seed=stable_seed("batch-campaign", n, m))
        counts = batch_count_pure_nash(batch)
        dynamics = batch_best_response_dynamics(batch, seed=0, max_steps=50_000)
        elapsed = time.perf_counter() - start
        with_ne = int((counts > 0).sum())
        total += instances
        counterexamples += instances - with_ne
        table.add_row(
            [
                n, m, instances, with_ne, int(counts.max()),
                float(dynamics.steps.mean()), "yes" if dynamics.all_converged else "NO",
                round(elapsed, 2),
            ]
        )
    print(table.render())
    verdict = "supported" if counterexamples == 0 else "REFUTED"
    print(
        f"\nConjecture 3.7 {verdict} on {total} random instances "
        f"({counterexamples} without a pure NE)."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 10_000)
